"""Composable organic-workload models: diurnal load, bursts, flash crowds.

The seed traffic layer replays a fixed number of Zipf-skewed requests at
maximum speed.  Real platforms see *time-varying* demand — daily
sinusoidal cycles, Poisson-arriving load bursts, and flash crowds around
events — and both cache effectiveness and rate-limiter pressure depend on
that shape.  This module models demand as an arrival-rate **multiplier
profile** over a grid of logical ticks:

* :class:`SteadyWorkload` — constant multiplier (the seed behaviour);
* :class:`DiurnalWorkload` — ``1 + amplitude * sin(...)`` daily cycle;
* :class:`BurstWorkload` — bursts arrive as a Bernoulli/Poisson process,
  each multiplying the rate by ``amplitude`` for ``duration`` ticks
  (overlapping bursts saturate at ``amplitude`` — they never stack);
* :class:`FlashCrowdWorkload` — one deterministic spike at a known time;
* :class:`CompositeWorkload` — the product of component profiles
  (``diurnal * bursts`` is rush-hour load with bursts riding on top).

:func:`sample_arrivals` turns a profile into per-tick request counts by
drawing ``Poisson(base_rate * multiplier[t])`` per tick from a seeded
generator, so every schedule is deterministic under a fixed seed.  Named
presets in :data:`WORKLOADS` back the ``--workload`` CLI axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import make_rng

__all__ = [
    "Workload",
    "SteadyWorkload",
    "DiurnalWorkload",
    "BurstWorkload",
    "FlashCrowdWorkload",
    "CompositeWorkload",
    "ArrivalSchedule",
    "sample_arrivals",
    "WORKLOADS",
    "make_workload",
]


class Workload:
    """Arrival-rate multiplier over a grid of logical ticks.

    Subclasses implement :meth:`profile`, returning one non-negative
    multiplier per tick, and :attr:`peak_multiplier`, a hard upper bound
    on every value the profile can take (property tests pin this).
    Workloads compose multiplicatively: ``diurnal * bursts``.
    """

    @property
    def peak_multiplier(self) -> float:
        """Upper bound on the multiplier at any tick."""
        raise NotImplementedError

    def profile(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        """Multipliers for ``horizon`` ticks (stochastic shapes draw from ``rng``)."""
        raise NotImplementedError

    def __mul__(self, other: "Workload") -> "CompositeWorkload":
        if not isinstance(other, Workload):
            return NotImplemented
        return CompositeWorkload((self, other))


@dataclass(frozen=True)
class SteadyWorkload(Workload):
    """Constant demand — the seed traffic layer's implicit model."""

    level: float = 1.0

    def __post_init__(self) -> None:
        if self.level <= 0:
            raise ConfigurationError("steady workload level must be positive")

    @property
    def peak_multiplier(self) -> float:
        return self.level

    def profile(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(_check_horizon(horizon), self.level, dtype=np.float64)


@dataclass(frozen=True)
class DiurnalWorkload(Workload):
    """Sinusoidal daily cycle: ``1 + amplitude * sin(2π (t + phase) / period)``.

    ``amplitude`` must stay below 1 so the rate never goes negative; the
    mean multiplier over whole periods is exactly 1, so the configured
    base rate is also the long-run mean rate.
    """

    period: int = 48
    amplitude: float = 0.5
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 1:
            raise ConfigurationError("diurnal period must be at least 2 ticks")
        if not 0.0 <= self.amplitude < 1.0:
            raise ConfigurationError("diurnal amplitude must be in [0, 1)")

    @property
    def peak_multiplier(self) -> float:
        return 1.0 + self.amplitude

    def profile(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        t = np.arange(_check_horizon(horizon), dtype=np.float64)
        return 1.0 + self.amplitude * np.sin(2.0 * np.pi * (t + self.phase) / self.period)


@dataclass(frozen=True)
class BurstWorkload(Workload):
    """Poisson-arriving load bursts riding on a unit baseline.

    Each tick starts a burst with probability ``burst_rate`` (a Bernoulli
    thinning of a Poisson process); a burst multiplies the rate by
    ``amplitude`` for ``duration`` ticks.  Overlapping bursts saturate at
    ``amplitude`` — a burst window never exceeds the configured amplitude.
    """

    burst_rate: float = 0.05
    duration: int = 5
    amplitude: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_rate <= 1.0:
            raise ConfigurationError("burst_rate must be in [0, 1]")
        if self.duration <= 0:
            raise ConfigurationError("burst duration must be positive")
        if self.amplitude < 1.0:
            raise ConfigurationError("burst amplitude must be at least 1")

    @property
    def peak_multiplier(self) -> float:
        return self.amplitude

    def profile(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        horizon = _check_horizon(horizon)
        out = np.ones(horizon, dtype=np.float64)
        starts = np.flatnonzero(rng.random(horizon) < self.burst_rate)
        for start in starts:
            out[start : start + self.duration] = self.amplitude
        return out


@dataclass(frozen=True)
class FlashCrowdWorkload(Workload):
    """One deterministic spike — an event-driven flash crowd.

    The spike begins at ``at_fraction`` of the horizon and lasts
    ``duration`` ticks at ``amplitude`` times the baseline.
    """

    at_fraction: float = 0.5
    duration: int = 6
    amplitude: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_fraction < 1.0:
            raise ConfigurationError("at_fraction must be in [0, 1)")
        if self.duration <= 0:
            raise ConfigurationError("flash-crowd duration must be positive")
        if self.amplitude < 1.0:
            raise ConfigurationError("flash-crowd amplitude must be at least 1")

    @property
    def peak_multiplier(self) -> float:
        return self.amplitude

    def profile(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        horizon = _check_horizon(horizon)
        out = np.ones(horizon, dtype=np.float64)
        start = int(self.at_fraction * horizon)
        out[start : start + self.duration] = self.amplitude
        return out


@dataclass(frozen=True)
class CompositeWorkload(Workload):
    """Product of component profiles (diurnal cycle with bursts on top)."""

    components: tuple[Workload, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ConfigurationError("composite workload needs at least one component")

    @property
    def peak_multiplier(self) -> float:
        peak = 1.0
        for component in self.components:
            peak *= component.peak_multiplier
        return peak

    def profile(self, horizon: int, rng: np.random.Generator) -> np.ndarray:
        out = np.ones(_check_horizon(horizon), dtype=np.float64)
        for component in self.components:
            out *= component.profile(horizon, rng)
        return out

    def __mul__(self, other: Workload) -> "CompositeWorkload":
        if not isinstance(other, Workload):
            return NotImplemented
        return CompositeWorkload(self.components + (other,))


@dataclass(frozen=True)
class ArrivalSchedule:
    """Per-tick request counts sampled from a workload profile."""

    counts: np.ndarray  # int64, one entry per tick
    multipliers: np.ndarray  # the profile the counts were drawn from
    base_rate: float

    @property
    def horizon(self) -> int:
        return int(self.counts.size)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def peak(self) -> int:
        return int(self.counts.max()) if self.counts.size else 0

    def arrival_times(
        self,
        tick_duration_s: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Expand per-tick counts into absolute arrival offsets (seconds).

        Maps the logical tick grid onto wall time for **open-loop**
        replay: a tick of ``c`` arrivals yields ``c`` timestamps inside
        ``[t * tick_duration_s, (t + 1) * tick_duration_s)``.  With
        ``rng`` the offsets within each tick are uniform (a piecewise
        Poisson process); without, arrivals land on tick boundaries
        (deterministic, useful for tests).  Returns a sorted float64
        array of length :attr:`total`.
        """
        if tick_duration_s <= 0:
            raise ConfigurationError("tick_duration_s must be positive")
        ticks = np.repeat(np.arange(self.counts.size, dtype=np.float64), self.counts)
        if rng is not None:
            offsets = rng.random(ticks.size)
        else:
            offsets = np.zeros(ticks.size, dtype=np.float64)
        return np.sort((ticks + offsets) * float(tick_duration_s))

    def summary(self) -> dict[str, float]:
        mean = float(self.counts.mean()) if self.counts.size else 0.0
        return {
            "ticks": float(self.horizon),
            "total_arrivals": float(self.total),
            "mean_arrivals_per_tick": mean,
            "peak_arrivals_per_tick": float(self.peak),
            "peak_to_mean": float(self.peak / mean) if mean > 0 else 0.0,
        }


def sample_arrivals(
    workload: Workload,
    base_rate: float,
    horizon: int,
    seed: int | np.random.Generator | None = 0,
) -> ArrivalSchedule:
    """Draw ``Poisson(base_rate * multiplier[t])`` arrivals per tick.

    Deterministic under a fixed seed: the same ``(workload, base_rate,
    horizon, seed)`` always yields the same schedule.  Stochastic profile
    shapes (burst placement) draw from the same generator before the
    Poisson thinning, so they are pinned by the seed too.
    """
    if base_rate <= 0:
        raise ConfigurationError("base_rate must be positive")
    rng = make_rng(seed)
    multipliers = workload.profile(_check_horizon(horizon), rng)
    counts = rng.poisson(base_rate * multipliers).astype(np.int64)
    return ArrivalSchedule(counts=counts, multipliers=multipliers, base_rate=float(base_rate))


def _check_horizon(horizon: int) -> int:
    if horizon <= 0:
        raise ConfigurationError("workload horizon must be positive")
    return int(horizon)


#: Named presets backing the ``--workload`` CLI/config axis.
WORKLOADS: dict[str, Workload] = {
    "steady": SteadyWorkload(),
    "diurnal": DiurnalWorkload(),
    "bursty": BurstWorkload(),
    "flash": FlashCrowdWorkload(),
    "diurnal_bursty": DiurnalWorkload() * BurstWorkload(),
}


def make_workload(name_or_model: str | Workload) -> Workload:
    """Resolve a preset name (or pass a model through)."""
    if isinstance(name_or_model, Workload):
        return name_or_model
    try:
        return WORKLOADS[name_or_model]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name_or_model!r}; options: {sorted(WORKLOADS)}"
        ) from None
