"""Shared-memory segments for the sliced replication protocol.

Sliced replication (see :mod:`repro.serving.replica`) splits a model in
two: per-user state is partitioned by shard, and the item side —
MF's item factors, NeuralCF's fused scoring tensor, ItemKNN's similarity
matrix, the popularity count vector — is held in
``multiprocessing.shared_memory`` segments that every worker process maps
read-only.  N shards therefore pay for **one** copy of the item state
instead of N, which is what makes per-shard RSS sublinear in catalog and
user count.

Lifecycle contract (pinned by ``tests/test_shared_state.py``):

* the **coordinator** owns the segments: :class:`SharedItemStore` creates
  them, republish-in-place via :meth:`SharedItemStore.publish` (safe
  because publishes happen under the service's write lock with all reads
  drained), and unlinks them exactly once in
  :meth:`SharedItemStore.close` — no ``/dev/shm`` segment survives
  engine close;
* **workers** attach by name (:func:`attach`) and never unlink.  The
  attach deliberately bypasses ``resource_tracker`` registration —
  the tracker would otherwise try to destroy the coordinator's segments
  when the first worker exits (and spam "leaked shared_memory" warnings
  for segments that are owned, tracked, and unlinked by the
  coordinator).

Arrays keep their **native dtype** (float64 for every current model):
the engine-conformance suite requires bit-identical scores between
engines, and the memory win comes from sharing one copy across N shards,
not from narrowing the element type.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "SegmentSpec",
    "SharedStateHandle",
    "SharedItemStore",
    "AttachedSharedState",
    "attach",
    "segment_exists",
    "live_owned_segments",
]


#: Names of segments created (and not yet unlinked) by this process.
#: The leak-check tests and the memory bench read this to assert that
#: closing a service destroys everything it created.
_OWNED_SEGMENTS: set[str] = set()


@dataclass(frozen=True)
class SegmentSpec:
    """Shape/dtype/name of one shared array (picklable, worker-bound)."""

    name: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedStateHandle:
    """Picklable description of a published set of shared arrays.

    Ships to workers instead of the arrays themselves: attaching maps
    the coordinator's segments zero-copy rather than deserializing
    private copies.
    """

    segments: tuple[tuple[str, SegmentSpec], ...]  # (array key, spec)

    @property
    def keys(self) -> tuple[str, ...]:
        return tuple(key for key, _ in self.segments)

    def nbytes(self) -> int:
        """Total shared payload size (reporting helper)."""
        return sum(
            int(np.prod(spec.shape, dtype=np.int64)) * np.dtype(spec.dtype).itemsize
            for _, spec in self.segments
        )


def _suppress_tracker_registration():
    """Context values for a registration-free ``SharedMemory`` attach.

    Python 3.11's ``SharedMemory.__init__`` registers the segment with
    ``resource_tracker`` unconditionally, even on attach.  A worker's
    tracker must not adopt segments the coordinator owns — on worker
    exit the tracker would unlink them under the coordinator, and (with
    forked workers sharing the parent's tracker process) double-count
    registrations into noisy "leaked shared_memory" stderr warnings.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    return original


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    original = _suppress_tracker_registration()
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def segment_exists(name: str) -> bool:
    """Whether a shared-memory segment with ``name`` still exists.

    Used by the leak-check tests: after a service closes, every segment
    it owned must be gone.
    """
    try:
        probe = _attach_untracked(name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


def live_owned_segments() -> tuple[str, ...]:
    """Segments this process created and has not yet unlinked."""
    return tuple(sorted(_OWNED_SEGMENTS))


class SharedItemStore:
    """Coordinator-side owner of one model's shared item-state segments.

    Parameters
    ----------
    arrays:
        Name → ndarray mapping from
        :meth:`~repro.recsys.base.Recommender.shared_item_state`.  Each
        array is copied once into a fresh shared-memory segment.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        if not arrays:
            raise ConfigurationError("SharedItemStore needs at least one array")
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._views: dict[str, np.ndarray] = {}
        self._specs: dict[str, SegmentSpec] = {}
        self._closed = False
        try:
            for key, array in arrays.items():
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                _OWNED_SEGMENTS.add(segment.name)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                self._segments[key] = segment
                self._views[key] = view
                self._specs[key] = SegmentSpec(
                    name=segment.name, shape=tuple(array.shape), dtype=array.dtype.str
                )
        except Exception:
            self.close()
            raise

    def handle(self) -> SharedStateHandle:
        if self._closed:
            raise ConfigurationError("SharedItemStore is closed")
        return SharedStateHandle(
            segments=tuple((key, self._specs[key]) for key in self._specs)
        )

    def publish(self, arrays: dict[str, np.ndarray]) -> None:
        """Overwrite segment contents in place (same shapes, same dtypes).

        Callers hold the service's model write lock with every reader
        drained, so no worker is mid-GEMM against the segment while it
        is rewritten; shapes are item-side only and the catalog never
        grows, so the segment size is always right.
        """
        if self._closed:
            raise ConfigurationError("SharedItemStore is closed")
        for key, array in arrays.items():
            view = self._views.get(key)
            if view is None:
                raise ConfigurationError(f"unknown shared array {key!r}")
            if array.shape != view.shape:
                raise ConfigurationError(
                    f"shared array {key!r} changed shape {view.shape} -> {array.shape}"
                )
            np.copyto(view, array)

    def close(self) -> None:
        """Release and unlink every segment (idempotent).

        The numpy views are dropped first — ``SharedMemory.close``
        refuses while exported buffers exist — then each segment is
        closed and unlinked, removing it from ``/dev/shm``.
        """
        if self._closed:
            return
        self._closed = True
        self._views.clear()
        for segment in self._segments.values():
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _OWNED_SEGMENTS.discard(segment.name)
        self._segments.clear()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass


class AttachedSharedState:
    """Worker-side read-only mapping of a :class:`SharedStateHandle`.

    ``views`` is the name → ndarray mapping handed to
    :meth:`~repro.recsys.base.Recommender.attach_shared_item_state`.
    The worker keeps the attachment for its whole lifetime (resyncs
    re-attach the same views to the fresh slice); segments are unlinked
    only by the owning coordinator.
    """

    def __init__(self, handle: SharedStateHandle) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.views: dict[str, np.ndarray] = {}
        for key, spec in handle.segments:
            segment = _attach_untracked(spec.name)
            self._segments.append(segment)
            view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
            view.setflags(write=False)
            self.views[key] = view


def attach(handle: SharedStateHandle) -> AttachedSharedState:
    """Map every segment in ``handle`` read-only (worker side)."""
    return AttachedSharedState(handle)
