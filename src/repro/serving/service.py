"""The simulated production platform in front of the recommender.

Every consumer of recommendations — the attacker's black-box facade, the
promotion evaluator, the organic traffic simulator — goes through
:class:`RecommendationService` instead of touching the model directly.
The service composes, in request order:

1. **rate limiting** — per-client quota policies (QPS caps, cohort-size
   caps, injection throttles) from :mod:`repro.serving.rate_limit`;
2. **top-k caching** — an LRU cache with strict or staleness-horizon
   invalidation from :mod:`repro.serving.cache`;
3. **batched scoring** — cache misses for a request are folded into one
   :meth:`~repro.recsys.base.Recommender.top_k_batch` call, so a cohort
   query costs one matrix op instead of a per-user Python loop;
4. **online detection** — an optional fake-profile detector screens
   injections at the boundary (flag or block), moving
   :mod:`repro.defense` from post-hoc analysis into the serving path.

Snapshot/restore preserves black-box episode semantics: restoring rolls
the model back *and* flushes the cache, so a reset platform never serves
lists computed against dropped injections.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import (
    ConfigurationError,
    InjectionBlockedError,
    RateLimitExceededError,
    SnapshotError,
)
from repro.serving.cache import TopKCache
from repro.serving.engine import ENGINES
from repro.serving.metrics import percentile_summary
from repro.serving.rate_limit import UNLIMITED, QuotaPolicy, RateLimiter

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.recsys
    from repro.recsys.base import Recommender
    from repro.serving.profiling import StageTimers

__all__ = ["RecommendationService", "ServingConfig", "ServiceStats", "resolve_slice"]

_DETECTOR_MODES = ("off", "flag", "block")


@dataclass(frozen=True)
class ServingConfig:
    """Declarative description of one serving posture.

    The default posture is transparent: no cache, no limits, no detector —
    byte-for-byte the seed reproduction's black-box behaviour.  Experiment
    configs turn individual axes on to create new attack scenarios.
    """

    cache_capacity: int = 0  # 0 disables the top-k cache
    ttl_injections: int = 0  # 0 = strict invalidation, t > 0 = staleness horizon
    default_policy: QuotaPolicy = UNLIMITED
    client_policies: tuple[tuple[str, QuotaPolicy], ...] = ()
    detector_mode: str = "off"  # off | flag | block
    # How the sharded coordinator resolves per-shard slices: "serial"
    # (sequential loop; simulated-makespan accounting), "threaded"
    # (persistent one-worker-per-shard thread pool; measured parallel
    # wall clock), or "process" (one worker process per shard holding a
    # replicated shard state, kept in lockstep by epoch-stamped
    # replication events — parallel compute past the GIL).  The single
    # service has no shards and ignores this field.
    engine: str = "serial"
    # How process-engine replicas hold model state: "sliced" partitions
    # per-user state by shard and shares the item side through
    # multiprocessing.shared_memory (per-shard memory sublinear in user
    # count; resync ships one user slice, not a full pickle), "full"
    # replicates the whole model per shard (the pre-slicing behaviour).
    # Models that do not support slicing fall back to full replication;
    # in-memory engines share one model and ignore this field.
    replication: str = "sliced"

    def __post_init__(self) -> None:
        if self.cache_capacity < 0:
            raise ConfigurationError("cache_capacity must be non-negative")
        if self.ttl_injections < 0:
            raise ConfigurationError("ttl_injections must be non-negative")
        if self.detector_mode not in _DETECTOR_MODES:
            raise ConfigurationError(f"detector_mode must be one of {_DETECTOR_MODES}")
        if self.engine not in ENGINES:
            raise ConfigurationError(f"engine must be one of {ENGINES}")
        if self.replication not in ("sliced", "full"):
            raise ConfigurationError("replication must be one of ('sliced', 'full')")


@dataclass
class ServiceStats:
    """Per-request accounting for throughput/latency reporting.

    ``record_request`` is thread-safe: the sharded deployment's threaded
    engine records the coordinator's stats from whichever client thread
    issued the request, and each shard's stats from its worker thread.

    Denial accounting is *split by cause*: ``n_rate_limited`` counts
    quota denials (the limiter raised on admission — the client spent
    budget it didn't have), ``n_shed`` counts requests an overload
    policy dropped before admission (the platform was saturated — no
    quota was charged), and ``n_timed_out`` counts requests that gave up
    waiting for queue space.  A shed request is *not* a quota denial;
    conflating them made "throttled attacker" and "overloaded platform"
    indistinguishable in reports.
    """

    n_requests: int = 0  # guarded-by: _lock
    n_users_served: int = 0  # guarded-by: _lock
    n_users_scored: int = 0  # guarded-by: _lock (users that hit the model: cache misses)
    n_injections: int = 0
    n_flagged_injections: int = 0
    n_blocked_injections: int = 0
    n_rate_limited: int = 0  # guarded-by: _lock (admissions denied by quota)
    n_shed: int = 0  # guarded-by: _lock (dropped by an overload policy pre-admission)
    n_timed_out: int = 0  # guarded-by: _lock (gave up waiting for queue space)
    n_canary_users: int = 0  # guarded-by: _lock (users served by a staged canary model)
    n_shadow_users: int = 0  # guarded-by: _lock (users shadow-scored against a staged model)
    n_shadow_agree: int = 0  # guarded-by: _lock (shadow users whose staged list matched the served one)
    wall_times: list[float] = field(default_factory=list)  # guarded-by: _lock
    batch_sizes: list[int] = field(default_factory=list)  # guarded-by: _lock
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __getstate__(self) -> dict:
        """Pickle counters only: thread locks cannot cross process bounds.

        Process-engine workers receive their ``ServiceStats`` as part of
        the replicated shard state, so the object must serialize; the
        lock is an in-process concern and is recreated fresh on load.
        """
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def record_request(self, n_users: int, n_scored: int, elapsed: float) -> None:
        with self._lock:
            self.n_requests += 1
            self.n_users_served += n_users
            self.n_users_scored += n_scored
            self.wall_times.append(elapsed)
            self.batch_sizes.append(n_users)

    def record_rate_limited(self) -> None:
        """One admission denied by quota (query or injection)."""
        with self._lock:
            self.n_rate_limited += 1

    def record_shed(self) -> None:
        """One request dropped by an overload policy before admission."""
        with self._lock:
            self.n_shed += 1

    def record_timed_out(self) -> None:
        """One request that gave up waiting for queue space."""
        with self._lock:
            self.n_timed_out += 1

    def record_canary(self, n_users: int) -> None:
        """Users whose lists came from the staged model during a rollout."""
        with self._lock:
            self.n_canary_users += n_users

    def record_shadow(self, n_users: int, n_agree: int) -> None:
        """Users shadow-scored against the staged model (served the active one)."""
        with self._lock:
            self.n_shadow_users += n_users
            self.n_shadow_agree += n_agree

    def clear_rollout_counters(self) -> None:
        """Drop the canary-window counters after a rollback.

        A rolled-back fleet must be indistinguishable from one that never
        staged the candidate, and these three counters are the only stats
        a pure canary/shadow window touches (regular request accounting
        is unchanged by design: shadows serve the active model, canaries
        degrade to it on failure).
        """
        with self._lock:
            self.n_canary_users = 0
            self.n_shadow_users = 0
            self.n_shadow_agree = 0

    def summary(self) -> dict[str, float]:
        """Uniform query-side cost summary (shared with QueryLog reporting)."""
        with self._lock:
            times = np.asarray(self.wall_times, dtype=np.float64)
            sizes = np.asarray(self.batch_sizes, dtype=np.float64)
            out: dict[str, float] = {
                "n_requests": float(self.n_requests),
                "n_users_served": float(self.n_users_served),
                "n_users_scored": float(self.n_users_scored),
                "n_injections": float(self.n_injections),
            }
            if self.n_rate_limited or self.n_shed or self.n_timed_out:
                out["n_rate_limited"] = float(self.n_rate_limited)
                out["n_shed"] = float(self.n_shed)
                out["n_timed_out"] = float(self.n_timed_out)
            if self.n_canary_users or self.n_shadow_users:
                out["n_canary_users"] = float(self.n_canary_users)
                out["n_shadow_users"] = float(self.n_shadow_users)
                out["n_shadow_agree"] = float(self.n_shadow_agree)
        if times.size:
            out["total_wall_s"] = float(times.sum())
            out["mean_wall_ms"] = float(times.mean() * 1e3)
            out.update(
                percentile_summary(times, percentiles=(50, 95), key_format="p{p}_wall_ms")
            )
            out["mean_batch_size"] = float(sizes.mean())
            out["max_batch_size"] = float(sizes.max())
        return out

    def reset(self) -> None:
        with self._lock:
            self.n_requests = 0
            self.n_users_served = 0
            self.n_users_scored = 0
            self.n_injections = 0
            self.n_flagged_injections = 0
            self.n_blocked_injections = 0
            self.n_rate_limited = 0
            self.n_shed = 0
            self.n_timed_out = 0
            self.n_canary_users = 0
            self.n_shadow_users = 0
            self.n_shadow_agree = 0
            self.wall_times = []
            self.batch_sizes = []


def resolve_slice(
    model: "Recommender",
    cache: TopKCache | None,
    users: Sequence[int] | np.ndarray,
    k: int,
    exclude_seen: bool,
    use_cache: bool,
    profiler: "StageTimers | None" = None,
) -> tuple[int, list[np.ndarray]]:
    """Resolve one slice of users: batched cache pass, one batch of misses.

    This is the **single definition of slice semantics**, shared by every
    resolution path: the single service's query, the sharded in-memory
    engines (which call it from the coordinator process under the
    shard's lock), and process-engine worker replicas — so cache
    hit/miss counters and served lists are identical across deployments
    by construction, not by parallel maintenance of duplicate code
    paths.

    The hot path is vectorised: one :meth:`TopKCache.lookup_batch` pass
    over the slice, miss users deduplicated with ``np.unique`` (which
    reproduces the historical ``sorted(set(...))`` scoring order
    exactly, keeping LRU insertion order identical), one
    ``top_k_batch`` over the unique misses, one
    :meth:`TopKCache.store_batch`.  Returns ``(n_scored, results)``
    where ``n_scored`` counts deduplicated model-scored users.

    ``profiler`` (a :class:`~repro.serving.profiling.StageTimers`)
    splits the slice wall clock into ``cache`` and ``scoring`` stages;
    ``None`` keeps the path uninstrumented.
    """
    users = np.asarray(users, dtype=np.int64)
    if cache is None or not use_cache:
        if profiler is None:
            return int(users.size), model.top_k_batch(users, k, exclude_seen=exclude_seen)
        t0 = time.perf_counter()
        results = model.top_k_batch(users, k, exclude_seen=exclude_seen)
        profiler.add("scoring", time.perf_counter() - t0, int(users.size))
        return int(users.size), results
    t0 = time.perf_counter() if profiler is not None else 0.0
    results, miss_positions = cache.lookup_batch(users.tolist(), k, exclude_seen)
    if profiler is not None:
        profiler.add("cache", time.perf_counter() - t0, int(users.size))
    if miss_positions.size == 0:
        return 0, results
    unique_users, inverse = np.unique(users[miss_positions], return_inverse=True)
    t0 = time.perf_counter() if profiler is not None else 0.0
    fresh = model.top_k_batch(unique_users, k, exclude_seen=exclude_seen)
    if profiler is not None:
        profiler.add("scoring", time.perf_counter() - t0, int(unique_users.size))
        t0 = time.perf_counter()
    cache.store_batch(unique_users.tolist(), k, exclude_seen, fresh)
    for position, fresh_index in zip(miss_positions.tolist(), inverse.tolist()):
        results[position] = fresh[fresh_index]
    if profiler is not None:
        profiler.add("cache", time.perf_counter() - t0, int(unique_users.size))
    return int(unique_users.size), results


@dataclass(frozen=True)
class _ServiceSnapshot:
    """Model snapshot plus the user count it must restore to."""

    model_snapshot: object
    n_users: int


class RecommendationService:
    """Cache- and quota-fronted facade over a fitted recommender."""

    def __init__(
        self,
        model: Recommender,
        config: ServingConfig | None = None,
        detector: object | None = None,
        clock: Callable[[], float] = time.perf_counter,
        limiter_clock: Callable[[], float] | None = None,
    ) -> None:
        if not model.is_fitted:
            raise ConfigurationError("RecommendationService requires a fitted model")
        config = config if config is not None else ServingConfig()
        if config.detector_mode != "off" and detector is None:
            raise ConfigurationError(
                f"detector_mode={config.detector_mode!r} requires a fitted detector"
            )
        self._model = model
        self.config = config
        self.detector = detector
        self._clock = clock
        self.cache = self._make_cache()
        limiter_kwargs = {} if limiter_clock is None else {"clock": limiter_clock}
        per_client = dict(config.client_policies)
        # Evaluation-side ground-truth reads are exempt unless a config
        # explicitly limits them (environment.measure relies on this).
        per_client.setdefault("evaluator", UNLIMITED)
        self.limiter = RateLimiter(
            default_policy=config.default_policy,
            per_client=per_client,
            **limiter_kwargs,
        )
        self.stats = ServiceStats()
        self.flagged_injections: list[tuple[int, float]] = []
        # Optional hot-path instrumentation: attach a
        # repro.serving.profiling.StageTimers to split query wall clock
        # into admission/routing/cache/scoring/merge stages.  None keeps
        # the query path uninstrumented (one attribute check per stage).
        self.profiler: "StageTimers | None" = None

    def _make_cache(self) -> TopKCache | None:
        """Coordinator-level cache (the sharded deployment keeps none)."""
        if self.config.cache_capacity <= 0:
            return None
        return TopKCache(
            capacity=self.config.cache_capacity,
            ttl_injections=self.config.ttl_injections,
            n_items=self._model.dataset.n_items,
        )

    # -- public surface -------------------------------------------------------
    @property
    def model(self) -> Recommender:
        """The backing model (platform-side access; attackers use the facade)."""
        return self._model

    @property
    def n_items(self) -> int:
        return self._model.dataset.n_items

    @property
    def n_users(self) -> int:
        return self._model.dataset.n_users

    def query(
        self,
        user_ids: Sequence[int],
        k: int,
        exclude_seen: bool = True,
        client: str = "default",
        use_cache: bool = True,
    ) -> list[np.ndarray]:
        """Top-``k`` lists for ``user_ids``, batched across cache misses.

        ``use_cache=False`` bypasses the result cache entirely (no lookup,
        no store) — the evaluation side uses it for ground-truth reads that
        must not observe or pollute staleness state.
        """
        if k <= 0:
            raise ConfigurationError("k must be positive")
        start = self._clock()
        users = np.asarray(user_ids, dtype=np.int64)
        profiler = self.profiler
        t0 = time.perf_counter() if profiler is not None else 0.0
        try:
            self.limiter.admit_query(client, int(users.size))
        except RateLimitExceededError:
            self.stats.record_rate_limited()
            raise
        if profiler is not None:
            profiler.add("admission", time.perf_counter() - t0, int(users.size))
        n_scored, results = resolve_slice(
            self._model, self.cache, users, k, exclude_seen, use_cache, profiler=profiler
        )
        self.stats.record_request(int(users.size), n_scored, self._clock() - start)
        return list(results)

    def inject(self, profile: Sequence[int], client: str = "default") -> int:
        """Register a new user profile, subject to throttles and screening."""
        try:
            self._admit_injection(client)
        except RateLimitExceededError:
            self.stats.record_rate_limited()
            raise
        flagged_score = self._screen_profile(profile)
        user_id = self._model.add_user(profile)
        if flagged_score is not None:
            # Record the *assigned* id, after add_user has run.  Screening
            # happens before the id exists, so predicting it from
            # dataset.n_users inside _screen_profile was correct only by
            # coincidence of call order.
            self.flagged_injections.append((user_id, flagged_score))
        self.stats.n_injections += 1
        self._invalidate_after_injection(user_id)
        return user_id

    def inject_batch(self, profiles: Sequence[Sequence[int]], client: str = "default") -> list[int]:
        """Register several profiles; each is admitted and screened in turn.

        The base implementation is a convenience loop.  The sharded
        process deployment overrides it to coalesce the whole burst into
        one batched replication event per shard round trip.  On a
        mid-batch denial (quota or detector block) the profiles admitted
        before the failure stay injected and the error propagates —
        matching what the equivalent :meth:`inject` loop would leave
        behind.
        """
        return [self.inject(profile, client) for profile in profiles]

    # -- injection pipeline hooks (overridden by the sharded deployment) ------
    def _admit_injection(self, client: str) -> None:
        """Route the injection admission to the client's quota state."""
        self.limiter.admit_injection(client)

    def _screen_profile(self, profile: Sequence[int]) -> float | None:
        """Optional online-detector screening at the injection boundary.

        Returns the detector score when the profile is flagged (caller
        records it against the id ``add_user`` actually assigns), None
        when screening is off or the profile passes; raises when the
        detector blocks.
        """
        if self.config.detector_mode == "off":
            return None
        score = float(self.detector.score(tuple(int(v) for v in profile)))
        if score > self.detector.threshold:
            self.stats.n_flagged_injections += 1
            if self.config.detector_mode == "block":
                self.stats.n_blocked_injections += 1
                raise InjectionBlockedError(
                    f"profile rejected by online detector (score {score:.3f} "
                    f"> threshold {self.detector.threshold:.3f})"
                )
            return score
        return None

    def _invalidate_after_injection(self, user_id: int) -> None:
        """Tell caching state that the model shifted under it."""
        if self.cache is not None:
            self.cache.note_injection()

    def cache_stats(self):
        """Aggregate :class:`~repro.serving.cache.CacheStats` view (or None).

        The single service has exactly one cache; the sharded deployment
        overrides this to sum per-shard counters.  Traffic reporting uses
        this accessor so both deployments report hit rates uniformly.
        """
        return self.cache.stats if self.cache is not None else None

    # -- episode management ---------------------------------------------------
    def snapshot(self) -> _ServiceSnapshot:
        """Capture model state together with its user count."""
        return _ServiceSnapshot(
            model_snapshot=self._model.snapshot(),
            n_users=self._model.dataset.n_users,
        )

    def restore(self, snapshot: _ServiceSnapshot) -> None:
        """Roll the platform back to a clean episode boundary.

        An episode reset is simulation control, so *every* externally
        observable piece of serving state returns to the
        freshly-constructed baseline, not just the model:

        * the cache is flushed and its hit/miss/eviction counters reset —
          a reset platform never serves (or reports) work from a dropped
          episode;
        * rate-limiter windows, quotas, and denial counters reset —
          injections undone by the rollback must not keep consuming a
          client's quota, and denials from dead episodes must not skew
          per-episode budget accounting;
        * request stats reset — makespan/throughput reports never
          double-count rolled-back traffic;
        * ``flagged_injections`` is cleared — flagged records reference
          user ids that no longer exist after the model rollback.
        """
        if not isinstance(snapshot, _ServiceSnapshot):
            raise SnapshotError("restore expects a snapshot from RecommendationService.snapshot")
        if snapshot.n_users > self._model.dataset.n_users:
            raise SnapshotError(
                f"snapshot records {snapshot.n_users} users but the platform only has "
                f"{self._model.dataset.n_users}; snapshots must be restored onto a "
                "later-or-equal state"
            )
        self._model.restore(snapshot.model_snapshot)
        if self._model.dataset.n_users != snapshot.n_users:
            raise SnapshotError(
                f"model restore produced {self._model.dataset.n_users} users, "
                f"snapshot recorded {snapshot.n_users}"
            )
        if self.cache is not None:
            self.cache.flush()
            self.cache.stats.reset()
        self.limiter.reset()
        self.stats.reset()
        self.flagged_injections.clear()
