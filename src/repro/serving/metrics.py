"""Shared latency summary statistics for serving reports.

One definition of "percentiles in milliseconds from raw seconds", used
by every latency consumer — the traffic simulator's per-request
breakdown (:func:`repro.serving.traffic.latency_percentiles`), the
:class:`~repro.serving.service.ServiceStats` wall-clock summary, and the
async front's queueing-latency report — instead of three parallel copies
of the same ``np.percentile`` arithmetic.  Percentile semantics are
numpy's default linear interpolation; the hand-computed fixture test in
``tests/test_serving_metrics.py`` pins them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["percentile_summary", "summarize_latencies"]

#: The tail percentiles serving reports quote by default.
DEFAULT_PERCENTILES = (50, 95, 99)


def _key(template: str, percentile: float) -> str:
    return template.format(p=f"{percentile:g}")


def percentile_summary(
    values_s,
    percentiles=DEFAULT_PERCENTILES,
    scale: float = 1e3,
    key_format: str = "p{p}_ms",
) -> dict[str, float]:
    """Percentiles of ``values_s`` (seconds) scaled to ms, as a flat dict.

    Empty input yields zeros for every requested percentile (reports stay
    shape-stable whether or not any request completed).  ``key_format``
    lets callers keep their historical key names (e.g. ``p{p}_wall_ms``);
    ``scale`` converts units (1e3 = seconds to milliseconds).
    """
    values = np.asarray(values_s, dtype=np.float64)
    if values.size == 0:
        return {_key(key_format, p): 0.0 for p in percentiles}
    points = np.percentile(values, percentiles)
    return {
        _key(key_format, p): float(point * scale)
        for p, point in zip(percentiles, points)
    }


def summarize_latencies(values_s) -> dict[str, float]:
    """Extended summary: p50/p95/p99 plus count, mean, and max (all ms)."""
    values = np.asarray(values_s, dtype=np.float64)
    out = percentile_summary(values)
    out["n"] = float(values.size)
    out["mean_ms"] = float(values.mean() * 1e3) if values.size else 0.0
    out["max_ms"] = float(values.max() * 1e3) if values.size else 0.0
    return out
