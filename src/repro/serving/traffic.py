"""Organic background traffic replay against the recommendation service.

The ROADMAP's north star is a platform serving heavy traffic from many
users; attacks in the paper land *on top of* that organic load.  This
module generates a deterministic, Zipf-skewed stream of top-k requests
(popular users re-query often, which is what makes result caches earn
their keep), with request volume optionally sampled from a composable
:mod:`~repro.serving.workload` model (diurnal cycles, Poisson bursts,
flash crowds — the tick *pacing* itself is honoured by
:class:`BackgroundTraffic`, which interleaves organic ticks with attack
steps), optionally interleaved with background injections (organic
sign-ups that invalidate cache state), and reports the serving-side
numbers a platform team would watch: throughput, latency percentiles
(overall *and* per batch size — flat percentiles over mixed batch sizes
hid the cohort-size dependence), cache hit rate, model-scoring fan-out,
and — against a sharded deployment — per-shard load and the simulated
multi-worker makespan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, RateLimitExceededError
from repro.serving.metrics import percentile_summary
from repro.serving.service import RecommendationService
from repro.serving.workload import Workload, make_workload, sample_arrivals
from repro.utils.rng import make_rng

__all__ = [
    "TrafficPattern",
    "TrafficReport",
    "TrafficSimulator",
    "BackgroundTraffic",
    "latency_percentiles",
    "latency_breakdown",
    "zipf_weights",
    "open_loop_plan",
]


def zipf_weights(
    n_users: int, exponent: float, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Zipf-like popularity weights (``rank^-exponent``, normalised).

    With ``rng``, which user occupies which popularity rank is itself a
    seeded draw; without it, user 0 is the most popular (rank order).
    """
    ranks = np.arange(1, n_users + 1, dtype=np.float64)
    weights = ranks**-exponent
    weights /= weights.sum()
    if rng is None:
        return weights
    out = np.zeros(n_users)
    out[rng.permutation(n_users)] = weights
    return out


def latency_percentiles(wall_times_s: list[float] | np.ndarray) -> dict[str, float]:
    """p50/p95/p99 latencies in milliseconds from raw per-request seconds.

    Thin alias over :func:`repro.serving.metrics.percentile_summary` —
    one shared definition of the percentile arithmetic (numpy linear
    interpolation, zeros on empty input) for every latency consumer.
    """
    return percentile_summary(wall_times_s)


def latency_breakdown(
    wall_times_s: list[float] | np.ndarray,
    batch_sizes: list[int] | np.ndarray,
) -> dict[str, dict[str, float]]:
    """Per-batch-size p50/p95/p99 alongside the overall percentiles.

    A flat percentile over requests of mixed batch size conflates
    per-user scoring cost with cohort size — a replay dominated by
    1-user requests reports a misleadingly low p95 for its 8-user
    requests and vice versa, which made sharded and single runs
    incomparable.  Keys of the ``by_batch_size`` map are stringified
    sizes (JSON-friendly); each entry carries its own ``n_requests``.
    """
    times = np.asarray(wall_times_s, dtype=np.float64)
    sizes = np.asarray(batch_sizes, dtype=np.int64)
    if times.size != sizes.size:
        raise ConfigurationError(
            f"wall_times and batch_sizes must align ({times.size} vs {sizes.size})"
        )
    out: dict[str, dict[str, float]] = {"overall": latency_percentiles(times)}
    out["overall"]["n_requests"] = float(times.size)
    by_size: dict[str, dict[str, float]] = {}
    for size in np.unique(sizes):
        bucket = times[sizes == size]
        entry = latency_percentiles(bucket)
        entry["n_requests"] = float(bucket.size)
        by_size[str(int(size))] = entry
    out["by_batch_size"] = by_size
    return out


@dataclass(frozen=True)
class TrafficPattern:
    """Shape of one synthetic load run.

    Users are drawn from a Zipf-like ranked distribution
    (``rank^-zipf_exponent`` over a seeded permutation of the user base),
    batch sizes uniformly from ``[min_batch, max_batch]``.  Every
    ``inject_every``-th request is preceded by one organic sign-up with a
    profile of ``injection_profile_length`` random items.

    When ``workload`` names a :mod:`~repro.serving.workload` model
    (``"diurnal"``, ``"bursty"``, ``"flash"``, ``"diurnal_bursty"`` or a
    :class:`~repro.serving.workload.Workload` instance), the request
    *volume* is sampled from a tick grid — ``horizon_ticks`` ticks of
    ``Poisson(base_rate * multiplier[t])`` arrivals each — and
    ``n_requests`` is ignored in favour of the sampled total (the
    schedule is reported under ``TrafficReport.arrivals``).  Note the
    replay itself still issues requests back-to-back at full speed (it
    benchmarks throughput, not real-time pacing), so wall-clock rate
    limits do not feel the shape; time-structured contention is modelled
    by :class:`BackgroundTraffic`, whose tick loop interleaves the
    schedule with attack steps.
    """

    n_requests: int = 200
    k: int = 20
    min_batch: int = 1
    max_batch: int = 8
    zipf_exponent: float = 1.1
    inject_every: int = 0  # 0 = query-only load
    injection_profile_length: int = 8
    seed: int = 0
    workload: str | Workload | None = None
    base_rate: float = 4.0  # mean arrivals per tick when workload is set
    horizon_ticks: int = 96

    def __post_init__(self) -> None:
        if self.n_requests <= 0 or self.k <= 0:
            raise ConfigurationError("n_requests and k must be positive")
        if not 1 <= self.min_batch <= self.max_batch:
            raise ConfigurationError("need 1 <= min_batch <= max_batch")
        if self.zipf_exponent < 0:
            raise ConfigurationError("zipf_exponent must be non-negative")
        if self.inject_every < 0 or self.injection_profile_length <= 0:
            raise ConfigurationError("invalid injection settings")
        if self.base_rate <= 0 or self.horizon_ticks <= 0:
            raise ConfigurationError("base_rate and horizon_ticks must be positive")
        if self.workload is not None:
            make_workload(self.workload)  # fail fast on unknown names


@dataclass
class TrafficReport:
    """Serving-side outcome of one replay."""

    n_requests: int
    n_users_served: int
    n_users_scored: int
    n_injections: int
    n_rate_limited: int
    duration_s: float
    requests_per_s: float
    users_per_s: float
    latency: dict[str, float] = field(default_factory=dict)
    latency_by_batch: dict[str, dict[str, float]] = field(default_factory=dict)
    cache_hit_rate: float | None = None
    mean_batch_size: float = 0.0
    arrivals: dict[str, float] | None = None  # workload schedule summary
    shards: list[dict[str, float]] | None = None  # per-shard load (sharded runs)
    makespan_s: float | None = None  # simulated parallel wall time
    simulated_users_per_s: float | None = None

    def to_dict(self) -> dict:
        out = {
            "n_requests": self.n_requests,
            "n_users_served": self.n_users_served,
            "n_users_scored": self.n_users_scored,
            "n_injections": self.n_injections,
            "n_rate_limited": self.n_rate_limited,
            "duration_s": self.duration_s,
            "requests_per_s": self.requests_per_s,
            "users_per_s": self.users_per_s,
            "mean_batch_size": self.mean_batch_size,
            **self.latency,
        }
        if self.latency_by_batch:
            out["latency_by_batch"] = self.latency_by_batch
        if self.cache_hit_rate is not None:
            out["cache_hit_rate"] = self.cache_hit_rate
        if self.arrivals is not None:
            out["arrivals"] = self.arrivals
        if self.shards is not None:
            out["shards"] = self.shards
            out["makespan_s"] = self.makespan_s
            out["simulated_users_per_s"] = self.simulated_users_per_s
        return out


class TrafficSimulator:
    """Deterministic request-stream generator for serving benchmarks."""

    def __init__(
        self,
        pattern: TrafficPattern | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.pattern = pattern if pattern is not None else TrafficPattern()
        self._clock = clock

    def _user_distribution(self, n_users: int, rng: np.random.Generator) -> np.ndarray:
        return zipf_weights(n_users, self.pattern.zipf_exponent, rng)

    def _request_plan(self, rng: np.random.Generator):
        """Number of requests to issue, plus the arrival schedule (if any)."""
        pattern = self.pattern
        if pattern.workload is None:
            return pattern.n_requests, None
        schedule = sample_arrivals(
            make_workload(pattern.workload),
            base_rate=pattern.base_rate,
            horizon=pattern.horizon_ticks,
            seed=rng,
        )
        return schedule.total, schedule

    def run(self, service: RecommendationService, client: str = "organic") -> TrafficReport:
        """Replay the pattern against ``service`` and collect a report."""
        pattern = self.pattern
        rng = make_rng(pattern.seed)
        n_users = service.n_users
        weights = self._user_distribution(n_users, rng)
        n_requests, schedule = self._request_plan(rng)
        wall_times: list[float] = []
        ok_batch_sizes: list[int] = []
        n_served = 0
        n_scored_before = service.stats.n_users_scored
        n_injections = 0
        n_rate_limited = 0
        cache_before = service.cache_stats()
        hits_before = cache_before.hits if cache_before is not None else 0
        lookups_before = cache_before.lookups if cache_before is not None else 0
        shards_before = (
            [shard.counters() for shard in service.shards]
            if hasattr(service, "shards")
            else None
        )

        # The whole request stream is sampled *before* the clock starts:
        # weighted no-replacement draws cost O(n_users) each, and folding
        # that load-generator work into the timed region understated
        # serving throughput (the replay measures the service, not the
        # simulator).  Draw order matches the historical per-iteration
        # loop exactly, so the issued stream is unchanged.
        plan: list[tuple[list[int] | None, np.ndarray, int]] = []
        for request_idx in range(n_requests):
            inject_profile: list[int] | None = None
            if pattern.inject_every and (request_idx + 1) % pattern.inject_every == 0:
                profile = rng.choice(
                    service.n_items,
                    size=min(pattern.injection_profile_length, service.n_items),
                    replace=False,
                )
                inject_profile = [int(v) for v in profile]
            batch = min(int(rng.integers(pattern.min_batch, pattern.max_batch + 1)), n_users)
            users = rng.choice(n_users, size=batch, replace=False, p=weights)
            plan.append((inject_profile, users, batch))

        start = self._clock()
        for inject_profile, users, batch in plan:
            if inject_profile is not None:
                try:
                    service.inject(inject_profile, client=client)
                    n_injections += 1
                except RateLimitExceededError:
                    n_rate_limited += 1
            t0 = self._clock()
            try:
                service.query(users, pattern.k, client=client)
            except RateLimitExceededError:
                n_rate_limited += 1
                continue
            wall_times.append(self._clock() - t0)
            ok_batch_sizes.append(batch)
            n_served += batch
        duration = self._clock() - start

        cache_hit_rate: float | None = None
        cache_after = service.cache_stats()
        if cache_after is not None:
            lookups = cache_after.lookups - lookups_before
            hits = cache_after.hits - hits_before
            cache_hit_rate = hits / lookups if lookups else 0.0
        n_ok = len(wall_times)
        breakdown = latency_breakdown(wall_times, ok_batch_sizes)
        overall = {k: v for k, v in breakdown["overall"].items() if k != "n_requests"}
        report = TrafficReport(
            n_requests=n_requests,
            n_users_served=n_served,
            n_users_scored=service.stats.n_users_scored - n_scored_before,
            n_injections=n_injections,
            n_rate_limited=n_rate_limited,
            duration_s=duration,
            requests_per_s=n_ok / duration if duration > 0 else 0.0,
            users_per_s=n_served / duration if duration > 0 else 0.0,
            latency=overall,
            latency_by_batch=breakdown["by_batch_size"],
            cache_hit_rate=cache_hit_rate,
            mean_batch_size=n_served / n_ok if n_ok else 0.0,
            arrivals=schedule.summary() if schedule is not None else None,
        )
        if shards_before is not None:
            # Simulated multi-worker view: shards are independent workers,
            # so the replay's parallel wall time is the busiest shard's
            # busy time accumulated during *this* run.  Every per-shard
            # number below is a delta for this run, not a lifetime total.
            per_run = [
                {"shard": float(shard.index)}
                | {key: after - before[key] for key, after in shard.counters().items()}
                for shard, before in zip(service.shards, shards_before)
            ]
            makespan = max(entry["busy_s"] for entry in per_run)
            report.shards = per_run
            report.makespan_s = makespan
            report.simulated_users_per_s = n_served / makespan if makespan > 0 else 0.0
        return report


class BackgroundTraffic:
    """Organic load interleaved with an attack (contention scenario axis).

    Wraps a workload-shaped arrival schedule and replays a few organic
    queries per :meth:`tick` against the same platform the attacker uses.
    Under bursty load the organic stream warms/evicts the shared caches
    between the attacker's injections, so the attacker's *observed*
    feedback freshness depends on when their query round lands relative
    to a burst — exactly the contention effect the sharded deployment's
    staleness skew is about.  Queries go through their own ``client``
    identity and never inject, so ground-truth evaluation is unaffected.
    """

    def __init__(
        self,
        workload: str | Workload = "bursty",
        base_rate: float = 3.0,
        horizon_ticks: int = 512,
        k: int = 10,
        max_batch: int = 4,
        zipf_exponent: float = 1.1,
        seed: int = 0,
        client: str = "organic",
    ) -> None:
        if k <= 0 or max_batch <= 0:
            raise ConfigurationError("k and max_batch must be positive")
        self.schedule = sample_arrivals(
            make_workload(workload), base_rate=base_rate, horizon=horizon_ticks, seed=seed
        )
        self.k = k
        self.max_batch = max_batch
        self.zipf_exponent = zipf_exponent
        self.client = client
        self._rng = make_rng(seed + 1)
        self._tick = 0
        self._weights: np.ndarray | None = None
        self.n_requests_issued = 0
        self.n_rate_limited = 0

    def tick(self, service: RecommendationService) -> int:
        """Issue this tick's organic arrivals; returns the request count.

        The schedule wraps around, so an attack longer than the horizon
        keeps seeing load.  User popularity weights are computed lazily
        against the service's *current* user base on first use.
        """
        n_users = service.n_users
        if self._weights is None or self._weights.size != n_users:
            # Rank assignment is a seeded draw, like the simulator's; it is
            # redrawn whenever the user base grows (an injection), so newly
            # injected users join the popularity lottery too.
            self._weights = zipf_weights(n_users, self.zipf_exponent, self._rng)
        count = int(self.schedule.counts[self._tick % self.schedule.horizon])
        self._tick += 1
        for _ in range(count):
            batch = min(int(self._rng.integers(1, self.max_batch + 1)), n_users)
            users = self._rng.choice(n_users, size=batch, replace=False, p=self._weights)
            try:
                service.query(users, self.k, client=self.client)
                self.n_requests_issued += 1
            except RateLimitExceededError:
                self.n_rate_limited += 1
        return count


def open_loop_plan(
    n_users: int,
    offered_users_per_s: float,
    n_requests: int,
    cohort_size: int = 64,
    k: int = 20,
    workload: str | Workload = "steady",
    zipf_exponent: float = 1.1,
    seed: int = 0,
    client: str = "organic",
    exclude_seen: bool = True,
) -> list:
    """Timestamped request plan for **open-loop** replay at a target rate.

    Closed-loop replay (:class:`TrafficSimulator`) issues the next
    request only when the previous one returns, so offered load adapts
    to service speed and tail latency under overload is invisible.  This
    plan instead fixes arrival times up front: a workload-shaped
    schedule (:func:`sample_arrivals`) is mapped onto wall time with
    ``tick_s = base_rate * cohort_size / offered_users_per_s``, so the
    *mean* offered rate is ``offered_users_per_s`` users/s while the
    workload shape (flash crowds, bursts) modulates the instantaneous
    rate around it.  Cohorts are Zipf-skewed no-replacement draws, one
    per arrival, sampled before the clock starts.

    Returns a list of :class:`~repro.serving.async_front.FrontRequest`
    sorted by arrival time, ready for
    :meth:`~repro.serving.async_front.AsyncServingFront.replay`.
    """
    from repro.serving.async_front import FrontRequest

    if offered_users_per_s <= 0:
        raise ConfigurationError("offered_users_per_s must be positive")
    if n_requests <= 0 or cohort_size <= 0:
        raise ConfigurationError("n_requests and cohort_size must be positive")
    base_rate = 3.0  # mean arrivals per tick; keeps ticks fine vs the horizon
    rng = make_rng(seed)
    weights = zipf_weights(n_users, zipf_exponent, rng)
    model = make_workload(workload)
    horizon = max(1, int(np.ceil(n_requests / base_rate)))
    schedule = sample_arrivals(model, base_rate=base_rate, horizon=horizon, seed=rng)
    while schedule.total < n_requests:
        horizon *= 2
        schedule = sample_arrivals(model, base_rate=base_rate, horizon=horizon, seed=rng)
    tick_s = base_rate * cohort_size / offered_users_per_s
    times = schedule.arrival_times(tick_s, rng)[:n_requests]
    cohort = min(cohort_size, n_users)
    return [
        FrontRequest(
            at_s=float(at_s),
            users=rng.choice(n_users, size=cohort, replace=False, p=weights),
            k=k,
            client=client,
            exclude_seen=exclude_seen,
        )
        for at_s in times
    ]
