"""Organic background traffic replay against the recommendation service.

The ROADMAP's north star is a platform serving heavy traffic from many
users; attacks in the paper land *on top of* that organic load.  This
module generates a deterministic, Zipf-skewed stream of top-k requests
(popular users re-query often, which is what makes result caches earn
their keep), optionally interleaves background injections (organic
sign-ups that invalidate cache state), and reports the serving-side
numbers a platform team would watch: throughput, latency percentiles,
cache hit rate, and model-scoring fan-out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, RateLimitExceededError
from repro.serving.service import RecommendationService
from repro.utils.rng import make_rng

__all__ = ["TrafficPattern", "TrafficReport", "TrafficSimulator", "latency_percentiles"]


def latency_percentiles(wall_times_s: list[float] | np.ndarray) -> dict[str, float]:
    """p50/p95/p99 latencies in milliseconds from raw per-request seconds."""
    times = np.asarray(wall_times_s, dtype=np.float64)
    if times.size == 0:
        return {"p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    return {
        "p50_ms": float(np.percentile(times, 50) * 1e3),
        "p95_ms": float(np.percentile(times, 95) * 1e3),
        "p99_ms": float(np.percentile(times, 99) * 1e3),
    }


@dataclass(frozen=True)
class TrafficPattern:
    """Shape of one synthetic load run.

    Users are drawn from a Zipf-like ranked distribution
    (``rank^-zipf_exponent`` over a seeded permutation of the user base),
    batch sizes uniformly from ``[min_batch, max_batch]``.  Every
    ``inject_every``-th request is preceded by one organic sign-up with a
    profile of ``injection_profile_length`` random items.
    """

    n_requests: int = 200
    k: int = 20
    min_batch: int = 1
    max_batch: int = 8
    zipf_exponent: float = 1.1
    inject_every: int = 0  # 0 = query-only load
    injection_profile_length: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_requests <= 0 or self.k <= 0:
            raise ConfigurationError("n_requests and k must be positive")
        if not 1 <= self.min_batch <= self.max_batch:
            raise ConfigurationError("need 1 <= min_batch <= max_batch")
        if self.zipf_exponent < 0:
            raise ConfigurationError("zipf_exponent must be non-negative")
        if self.inject_every < 0 or self.injection_profile_length <= 0:
            raise ConfigurationError("invalid injection settings")


@dataclass
class TrafficReport:
    """Serving-side outcome of one replay."""

    n_requests: int
    n_users_served: int
    n_users_scored: int
    n_injections: int
    n_rate_limited: int
    duration_s: float
    requests_per_s: float
    users_per_s: float
    latency: dict[str, float] = field(default_factory=dict)
    cache_hit_rate: float | None = None
    mean_batch_size: float = 0.0

    def to_dict(self) -> dict:
        out = {
            "n_requests": self.n_requests,
            "n_users_served": self.n_users_served,
            "n_users_scored": self.n_users_scored,
            "n_injections": self.n_injections,
            "n_rate_limited": self.n_rate_limited,
            "duration_s": self.duration_s,
            "requests_per_s": self.requests_per_s,
            "users_per_s": self.users_per_s,
            "mean_batch_size": self.mean_batch_size,
            **self.latency,
        }
        if self.cache_hit_rate is not None:
            out["cache_hit_rate"] = self.cache_hit_rate
        return out


class TrafficSimulator:
    """Deterministic request-stream generator for serving benchmarks."""

    def __init__(
        self,
        pattern: TrafficPattern | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.pattern = pattern if pattern is not None else TrafficPattern()
        self._clock = clock

    def _user_distribution(self, n_users: int, rng: np.random.Generator) -> np.ndarray:
        ranks = np.arange(1, n_users + 1, dtype=np.float64)
        weights = ranks ** -self.pattern.zipf_exponent
        weights /= weights.sum()
        # Which user occupies which popularity rank is itself random.
        permutation = rng.permutation(n_users)
        out = np.zeros(n_users)
        out[permutation] = weights
        return out

    def run(self, service: RecommendationService, client: str = "organic") -> TrafficReport:
        """Replay the pattern against ``service`` and collect a report."""
        pattern = self.pattern
        rng = make_rng(pattern.seed)
        n_users = service.n_users
        weights = self._user_distribution(n_users, rng)
        wall_times: list[float] = []
        n_served = 0
        n_scored_before = service.stats.n_users_scored
        n_injections = 0
        n_rate_limited = 0
        hits_before = service.cache.stats.hits if service.cache is not None else 0
        lookups_before = service.cache.stats.lookups if service.cache is not None else 0

        start = self._clock()
        for request_idx in range(pattern.n_requests):
            if pattern.inject_every and (request_idx + 1) % pattern.inject_every == 0:
                profile = rng.choice(
                    service.n_items,
                    size=min(pattern.injection_profile_length, service.n_items),
                    replace=False,
                )
                try:
                    service.inject([int(v) for v in profile], client=client)
                    n_injections += 1
                except RateLimitExceededError:
                    n_rate_limited += 1
            batch = min(int(rng.integers(pattern.min_batch, pattern.max_batch + 1)), n_users)
            users = rng.choice(n_users, size=batch, replace=False, p=weights)
            t0 = self._clock()
            try:
                service.query(users, pattern.k, client=client)
            except RateLimitExceededError:
                n_rate_limited += 1
                continue
            wall_times.append(self._clock() - t0)
            n_served += batch
        duration = self._clock() - start

        cache_hit_rate: float | None = None
        if service.cache is not None:
            lookups = service.cache.stats.lookups - lookups_before
            hits = service.cache.stats.hits - hits_before
            cache_hit_rate = hits / lookups if lookups else 0.0
        n_ok = len(wall_times)
        return TrafficReport(
            n_requests=pattern.n_requests,
            n_users_served=n_served,
            n_users_scored=service.stats.n_users_scored - n_scored_before,
            n_injections=n_injections,
            n_rate_limited=n_rate_limited,
            duration_s=duration,
            requests_per_s=n_ok / duration if duration > 0 else 0.0,
            users_per_s=n_served / duration if duration > 0 else 0.0,
            latency=latency_percentiles(wall_times),
            cache_hit_rate=cache_hit_rate,
            mean_batch_size=n_served / n_ok if n_ok else 0.0,
        )
