"""Fault injection for rollout testing: a wrapper model that misbehaves.

The rollout protocol's safety story is "a bad candidate can never take
the fleet down": a staged model that raises mid-slice or stalls past the
guard's latency ceiling must trigger an automatic rollback that leaves
every shard on the old version with no leaked resources.  Pinning that
requires a *controllably* bad model — this module provides one.

:class:`FaultInjector` wraps any fitted recommender and misbehaves only
on the serving surface (``top_k_batch``), in one of two modes:

* ``mode="raise"`` — every batched scoring call raises
  :class:`InjectedFaultError` (a hard canary failure);
* ``mode="stall"`` — every batched scoring call sleeps ``stall_s``
  before delegating (a canary stall, tripping
  :attr:`~repro.serving.rollout.RolloutGuard.canary_timeout_s`).

The wrapper is picklable (it ships to process-engine replicas like any
staged model) and delegates everything else to the wrapped model, so it
passes ``stage_rollout``'s fitness and shape validation.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, ReproError
from repro.recsys.base import Recommender

__all__ = ["FaultInjector", "InjectedFaultError"]

_MODES = ("raise", "stall")


class InjectedFaultError(ReproError):
    """The deliberate failure a :class:`FaultInjector` raises when scoring."""


class FaultInjector(Recommender):
    """A fitted recommender that fails (or stalls) on the serving path.

    Only the batched serving entry point misbehaves; profile access,
    snapshots, and mutation delegate to the wrapped model so the wrapper
    is indistinguishable from a healthy candidate until traffic hits it
    — exactly how a subtly broken retrained model fails in production.
    """

    # A staged FaultInjector must ship as a full transient pickle even
    # under sliced replication (it has no slicing surface of its own).
    supports_slicing = False

    def __init__(self, inner: Recommender, mode: str = "raise", stall_s: float = 0.25) -> None:
        super().__init__()
        if not inner.is_fitted:
            raise ConfigurationError("FaultInjector wraps a fitted model")
        if mode not in _MODES:
            raise ConfigurationError(f"mode must be one of {_MODES}, got {mode!r}")
        if stall_s < 0:
            raise ConfigurationError("stall_s must be non-negative")
        self.inner = inner
        self.mode = mode
        self.stall_s = float(stall_s)
        self._dataset = inner.dataset

    # -- the faulty serving surface -------------------------------------------
    def top_k_batch(
        self, user_ids: Sequence[int] | np.ndarray, k: int, exclude_seen: bool = True
    ) -> list[np.ndarray]:
        if self.mode == "raise":
            raise InjectedFaultError(
                "injected fault: staged model failed while scoring "
                f"{len(np.asarray(user_ids))} users"
            )
        time.sleep(self.stall_s)
        return self.inner.top_k_batch(user_ids, k, exclude_seen=exclude_seen)

    # -- transparent delegation -----------------------------------------------
    def scores(self, user_id: int, item_ids: np.ndarray | None = None) -> np.ndarray:
        return self.inner.scores(user_id, item_ids)

    def scores_batch(
        self, user_ids: Sequence[int] | np.ndarray, item_ids: np.ndarray | None = None
    ) -> np.ndarray:
        return self.inner.scores_batch(user_ids, item_ids)

    def prewarm(self):
        return self.inner.prewarm()

    def apply_prewarm(self, state) -> None:
        self.inner.apply_prewarm(state)

    def prewarm_stats(self) -> dict[str, int]:
        return self.inner.prewarm_stats()

    def add_user(self, profile: Sequence[int]) -> int:
        user_id = self.inner.add_user(profile)
        self._dataset = self.inner.dataset
        return user_id

    def snapshot(self):
        return self.inner.snapshot()

    def restore(self, snapshot) -> None:
        self.inner.restore(snapshot)
        self._dataset = self.inner.dataset
