"""Execution engines: how the coordinator resolves per-shard work.

The sharded deployment fans one batched request out into independent
per-shard resolution tasks (cache lookups, one ``top_k_batch`` over the
misses, stores, stat recording).  *How* those tasks run is an execution
policy, not serving semantics, so it lives behind the
:class:`ExecutionEngine` interface:

* :class:`SerialEngine` — the tasks run in the coordinator thread, one
  after another.  This is the historical behaviour; per-shard busy times
  still feed the *simulated* makespan model (parallel wall time = the
  busiest worker's accumulated busy time).
* :class:`ThreadedEngine` — a persistent ``ThreadPoolExecutor`` with one
  worker per shard resolves the slices concurrently.  numpy releases the
  GIL inside BLAS, and per-shard service latency (the RPC hop a remote
  shard worker costs in a real deployment) overlaps across shards, so
  the replay's wall clock is *measured* parallel time rather than a
  model of it.
* :class:`ProcessEngine` — one persistent single-worker
  ``ProcessPoolExecutor`` **per shard**, so CPU-heavy scoring (MF dot
  products, NeuralCF forward passes) parallelises past the GIL.  Process
  workers share no memory with the coordinator, which changes the
  architecture rather than just the scheduling: the engine only moves
  picklable messages, and the sharded service replicates each shard's
  state into its worker and keeps it in lockstep through epoch-stamped
  replication events (see :mod:`repro.serving.replica`).  Because tasks
  are *routed* (shard ``i``'s work must reach the worker holding shard
  ``i``'s replica), the process engine exposes ``submit_to``/``broadcast``
  instead of the closure-based :meth:`ExecutionEngine.run`.
* :class:`AsyncEngine` — per-shard slices resolve as coroutines on an
  asyncio event loop, with the modelled per-slice RPC latency paid as
  an *awaited* ``asyncio.sleep`` instead of a blocking one.  Within one
  request the slice waits overlap exactly as the threaded engine's do;
  the difference is that :meth:`AsyncEngine.run_async` is awaitable, so
  an asyncio serving front (:mod:`repro.serving.async_front`) can keep
  *many requests* in flight on one loop and overlap their RPC waits
  across requests — the only way past the per-request RPC latency floor
  a closed-loop replay pays.  The synchronous :meth:`AsyncEngine.run`
  bridge (used by closed-loop callers and the conformance suite)
  submits the same coroutine to the engine's own background loop.

Every engine also accepts ``latency_s``, the modelled per-slice RPC
latency of a remote shard worker: the serial engine pays it once per
slice in sequence, the threaded engine sleeps it on each worker (waits
overlap across shards), and the async engine awaits it (waits overlap
across shards *and*, through the front, across requests).  The process
engine models it worker-side in ``replica.query_slice`` instead.

All engines resolve the same per-shard work and return results in task
order, so merged top-k output is bit-identical across engines — the
engine-conformance suite pins this for every recommender and shard
count (``tests/test_engine_conformance.py``).

The module also provides :class:`ReadWriteLock`, the coordination
primitive the sharded service uses to let concurrent queries share the
model (readers) while injections and episode restores mutate it
exclusively (writers, with writer preference so a pending injection is
not starved by a stream of organic queries).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence, TypeVar

from repro.errors import ConfigurationError

__all__ = [
    "ExecutionEngine",
    "SerialEngine",
    "ThreadedEngine",
    "ProcessEngine",
    "AsyncEngine",
    "make_engine",
    "ENGINES",
    "ReadWriteLock",
]

T = TypeVar("T")

#: Engine mode names accepted by ``ServingConfig.engine`` / ``make_engine``.
ENGINES = ("serial", "threaded", "process", "async")


class ExecutionEngine:
    """Strategy for running a list of independent per-shard tasks.

    Implementations must return one result per task, in task order, and
    propagate the first task exception to the caller.  Tasks touch only
    their own shard's state (each shard's lock confines its cache, quota
    windows, and counters to whichever engine thread resolves it), so
    engines need no knowledge of serving internals.

    ``shares_memory`` declares whether workers see the coordinator's
    objects directly.  When it is ``False`` (the process engine) the
    coordinator cannot hand workers closures over shared state — it must
    replicate shard state into the workers and route picklable messages
    with :meth:`submit_to`/:meth:`broadcast` instead of :meth:`run`.

    ``latency_s`` models the per-slice RPC hop a remote shard worker
    costs: each task pays it once before executing, in whatever way is
    idiomatic for the engine (sequential sleeps, per-worker sleeps, or
    awaited sleeps).  It is an execution concern — how waits schedule —
    which is why it lives here and not in the serving layer.
    """

    name: str = "?"
    #: Workers observe the coordinator's live objects (threads) rather
    #: than operating on a serialized replica (processes).
    shares_memory: bool = True
    #: Slices of one request may resolve at the same time (so shared
    #: lazy state must be rebuilt *before* fan-out, not raced during it).
    concurrent: bool = False

    def run(self, tasks: Sequence[Callable[[], T]], latency_s: float = 0.0) -> list[T]:
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent; no-op for serial)."""

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialEngine(ExecutionEngine):
    """Resolve shard tasks sequentially in the calling thread.

    The modelled RPC latency is paid once per slice, in sequence — the
    historical cost profile of a coordinator that contacts its shards
    one after another.
    """

    name = "serial"

    def run(self, tasks: Sequence[Callable[[], T]], latency_s: float = 0.0) -> list[T]:
        if latency_s <= 0.0:
            return [task() for task in tasks]
        results = []
        for task in tasks:
            time.sleep(latency_s)
            results.append(task())
        return results


def _sleep_then_run(task: Callable[[], T], latency_s: float) -> T:
    """Pay the modelled RPC hop on the worker, then resolve the slice."""
    time.sleep(latency_s)
    return task()


class ThreadedEngine(ExecutionEngine):
    """Resolve shard tasks concurrently on a persistent worker pool.

    One worker per shard: a request never produces more than one task per
    shard, so ``n_workers`` threads are exactly enough to run every slice
    of a request at once, and the pool is reused across requests (thread
    startup is not paid on the query path).  Single-task requests skip
    the pool entirely — handing one task to the calling thread is cheaper
    than a submit/result round-trip and has identical semantics.
    """

    name = "threaded"
    concurrent = True

    def __init__(self, n_workers: int) -> None:
        if n_workers <= 0:
            raise ConfigurationError("ThreadedEngine needs a positive worker count")
        self.n_workers = n_workers
        self._pool = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="shard-worker"
        )
        self._closed = False

    def run(self, tasks: Sequence[Callable[[], T]], latency_s: float = 0.0) -> list[T]:
        if self._closed:
            raise ConfigurationError("ThreadedEngine is closed")
        if len(tasks) == 1:
            if latency_s > 0.0:
                time.sleep(latency_s)
            return [tasks[0]()]
        if latency_s > 0.0:
            futures = [
                self._pool.submit(_sleep_then_run, task, latency_s) for task in tasks
            ]
        else:
            futures = [self._pool.submit(task) for task in tasks]
        # Drain every sibling before surfacing a failure: the caller may
        # hold a lock covering all tasks (the sharded query's model read
        # lock), and releasing it while a slow sibling is still running
        # would let a subsequent writer mutate shared state under an
        # in-flight worker.  result() then re-raises the first (by task
        # order) failure in the caller.
        wait(futures)
        return [future.result() for future in futures]

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        # Safety net for services dropped without close() (e.g. a
        # config-selected threaded engine inside a long-lived experiment
        # prep): release the worker threads without blocking collection.
        try:
            if not self._closed:
                self._closed = True
                self._pool.shutdown(wait=False)
        except Exception:
            pass  # interpreter shutdown: executor internals may be gone


class ProcessEngine(ExecutionEngine):
    """Route per-shard work to one persistent worker *process* per shard.

    Unlike the threaded pool, a worker here owns a private address space:
    the sharded service installs a replica of the shard's state into it
    at pool start (see :mod:`repro.serving.replica`) and every subsequent
    interaction is a picklable message.  One single-worker
    ``ProcessPoolExecutor`` per shard — rather than one N-worker pool —
    is what makes routing deterministic: shard ``i``'s messages always
    land on the process holding shard ``i``'s replica.

    ``start_method`` defaults to ``fork`` where the platform offers it
    (workers start in milliseconds) and falls back to ``spawn``.  The
    serialization contract is identical under both: submitted functions
    and arguments always cross the process boundary through a pickled
    call pipe, so nothing can accidentally lean on inherited memory.
    Note for Python >= 3.12: forking after sibling pools have started
    their executor threads draws a ``DeprecationWarning`` (and 3.14
    changes the platform default); pass ``start_method="spawn"`` or
    ``"forkserver"`` there — everything else is start-method agnostic.
    """

    name = "process"
    shares_memory = False
    concurrent = True

    def __init__(self, n_workers: int, start_method: str | None = None) -> None:
        if n_workers <= 0:
            raise ConfigurationError("ProcessEngine needs a positive worker count")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.n_workers = n_workers
        self.start_method = start_method
        context = multiprocessing.get_context(start_method)
        self._pools = [
            ProcessPoolExecutor(max_workers=1, mp_context=context)
            for _ in range(n_workers)
        ]
        self._closed = False

    def run(self, tasks: Sequence[Callable[[], T]], latency_s: float = 0.0) -> list[T]:
        raise ConfigurationError(
            "ProcessEngine workers hold replicated shard state and cannot run "
            "coordinator closures; route picklable calls with submit_to/broadcast"
        )

    def submit_to(self, worker: int, fn: Callable, /, *args) -> Future:
        """Submit ``fn(*args)`` to worker ``worker``'s process (non-blocking).

        ``fn`` must be a module-level callable and every argument
        picklable — the call crosses the process boundary.
        """
        if self._closed:
            raise ConfigurationError("ProcessEngine is closed")
        return self._pools[worker].submit(fn, *args)

    def call(self, worker: int, fn: Callable, /, *args):
        """Synchronous :meth:`submit_to` (replication/control round trips)."""
        return self.submit_to(worker, fn, *args).result()

    def broadcast(self, fn: Callable, /, *args) -> list:
        """Run ``fn(*args)`` on every worker; results in worker order.

        Like :meth:`gather`, every worker finishes before the first
        failure (by worker order) is re-raised in the caller.
        """
        return self.gather([self.submit_to(i, fn, *args) for i in range(self.n_workers)])

    @staticmethod
    def gather(futures: Sequence[Future]) -> list:
        """Drain ``futures`` and return results in submission order.

        Mirrors the threaded engine's drain-before-raise contract: the
        caller may hold a lock covering every in-flight worker message,
        so no sibling may still be executing when this returns or raises.
        """
        wait(futures)
        return [future.result() for future in futures]

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            for pool in self._pools:
                pool.shutdown(wait=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if not self._closed:
                self._closed = True
                for pool in self._pools:
                    pool.shutdown(wait=False)
        except Exception:
            pass  # interpreter shutdown: executor internals may be gone


class AsyncEngine(ExecutionEngine):
    """Resolve shard tasks as coroutines on an asyncio event loop.

    The native surface is :meth:`run_async`, a plain coroutine that runs
    on *whatever loop awaits it*: per-slice RPC latency becomes an
    awaited ``asyncio.sleep``, so the waits of every slice — and, when
    the caller is the asyncio serving front holding many requests in
    flight, of every *request* — overlap on one loop thread.  The slice
    compute itself (cache lookups, one BLAS-backed ``top_k_batch``) runs
    inline on the loop; that serialises compute across in-flight
    requests, which is the classic asyncio trade: ideal when requests
    are wait-dominated (the modelled RPC hop dwarfs post-cache compute),
    wrong when they are compute-dominated (use the threaded or process
    engine there).

    The synchronous :meth:`run` bridge exists so the engine drops into
    every closed-loop caller (the conformance suite, ``TrafficSimulator``)
    unchanged: it submits the coroutine to a private background loop and
    blocks for the result.  Calling :meth:`run` *from* that loop's own
    thread would deadlock, so it is rejected; coroutine callers must
    await :meth:`run_async` instead.
    """

    name = "async"
    concurrent = True

    def __init__(self) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="async-engine", daemon=True
        )
        self._thread.start()
        self._closed = False

    async def run_async(
        self, tasks: Sequence[Callable[[], T]], latency_s: float = 0.0
    ) -> list[T]:
        if self._closed:
            raise ConfigurationError("AsyncEngine is closed")

        async def resolve(task: Callable[[], T]) -> T:
            if latency_s > 0.0:
                await asyncio.sleep(latency_s)
            return task()

        # return_exceptions keeps the drain-before-raise contract every
        # engine honours: the caller may hold a lock covering all tasks,
        # so no sibling may still be running when the first (task-order)
        # failure surfaces.
        results = await asyncio.gather(
            *(resolve(task) for task in tasks), return_exceptions=True
        )
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return list(results)

    def run(self, tasks: Sequence[Callable[[], T]], latency_s: float = 0.0) -> list[T]:
        if self._closed:
            raise ConfigurationError("AsyncEngine is closed")
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop:
            raise ConfigurationError(
                "AsyncEngine.run called from its own event loop thread; "
                "await run_async instead"
            )
        if len(tasks) == 1 and latency_s <= 0.0:
            # Same fast path as the threaded engine: one latency-free
            # task in the caller's thread skips the loop round trip.
            return [tasks[0]()]
        future = asyncio.run_coroutine_threadsafe(
            self.run_async(list(tasks), latency_s), self._loop
        )
        return future.result()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            if not self._thread.is_alive():
                self._loop.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if not self._closed:
                self._closed = True
                self._loop.call_soon_threadsafe(self._loop.stop)
        except Exception:
            pass  # interpreter shutdown: loop internals may be gone


def make_engine(spec: str | ExecutionEngine, n_workers: int) -> ExecutionEngine:
    """Resolve an engine mode name (or pass an instance through)."""
    if isinstance(spec, ExecutionEngine):
        return spec
    if spec == "serial":
        return SerialEngine()
    if spec == "threaded":
        return ThreadedEngine(n_workers)
    if spec == "process":
        return ProcessEngine(n_workers)
    if spec == "async":
        return AsyncEngine()
    raise ConfigurationError(f"engine must be one of {ENGINES} or an ExecutionEngine")


class ReadWriteLock:
    """Readers-writer lock with writer preference.

    Queries acquire the read side (many may score concurrently against
    the shared model, which is read-only on the query path); injections
    and episode restores acquire the write side (they mutate the model
    and every shard's serving state).  A waiting writer blocks *new*
    readers, so a burst of organic queries cannot starve an injection.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0  # guarded-by: _cond
        self._writer_active = False  # guarded-by: _cond
        self._writers_waiting = 0  # guarded-by: _cond

    def try_acquire_read(self) -> bool:
        """Acquire the read side without blocking; False if a writer is
        active or waiting.  The async query path uses this as its fast
        path: a coroutine must never block the event-loop thread inside
        ``Condition.wait`` (a reader already holding the lock could be
        parked on the same loop, unable to resume and release — the
        classic loop-thread deadlock), so on failure it falls back to
        :meth:`acquire_read` on an executor thread.
        """
        with self._cond:
            if self._writer_active or self._writers_waiting:
                return False
            self._readers += 1
            return True

    def acquire_read(self) -> None:
        """Blocking read acquisition (pair with :meth:`release_read`)."""
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()
