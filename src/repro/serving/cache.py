"""LRU top-k result cache with injection-versioned invalidation.

A production recommender does not re-rank the catalog on every request:
top-k lists are cached and refreshed when the underlying model state
changes.  For the attack setting the interesting state change is an
*injection* — a new user folded into the system shifts item
representations, so cached lists go stale the moment a profile lands.

Two freshness policies are supported, selected by ``ttl_injections``:

* **strict** (``ttl_injections=0``) — every injection invalidates the whole
  cache, so served lists are always element-wise identical to an uncached
  ``top_k`` call.  This is the default and keeps the black-box boundary
  semantics of the seed reproduction.
* **staleness horizon** (``ttl_injections=t > 0``) — an entry may be served
  until ``t`` further injections have landed.  This models the delayed
  feedback of real platforms (CDN/result caches refresh on a schedule, not
  on every write) and gives the attacker a new scenario axis: query
  feedback that lags their own injections by a bounded number of steps.

Keys are ``(user_id, k, exclude_seen)``; eviction is least-recently-used.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["TopKCache", "CacheStats"]


@dataclass
class CacheStats:
    """Counters for cache effectiveness reporting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0


class TopKCache:
    """LRU cache of top-k lists, keyed by ``(user_id, k, exclude_seen)``.

    Parameters
    ----------
    capacity:
        Maximum number of cached lists; least-recently-used entries are
        evicted beyond it.
    ttl_injections:
        Staleness horizon measured in injections.  ``0`` means strict
        invalidation (flush on every injection); ``t > 0`` means an entry
        may be served until ``t`` injections after it was stored.
    n_items:
        Catalog size, when known.  With it set, :meth:`store` and
        :meth:`store_batch` require ``len(items) == min(k, n_items)`` —
        a caller storing a short list for key ``(user, k, …)`` would
        poison every later hit on that key.  ``None`` (the default)
        keeps the cache agnostic for callers without a catalog.
    """

    def __init__(
        self, capacity: int = 4096, ttl_injections: int = 0, n_items: int | None = None
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if ttl_injections < 0:
            raise ConfigurationError("ttl_injections must be non-negative")
        if n_items is not None and n_items <= 0:
            raise ConfigurationError("n_items must be positive when given")
        self.capacity = capacity
        self.ttl_injections = ttl_injections
        self.n_items = n_items
        self.stats = CacheStats()
        self._version = 0  # bumped once per injection
        self._entries: OrderedDict[tuple[int, int, bool], tuple[np.ndarray, int]] = OrderedDict()

    def _check_length(self, k: int, items: np.ndarray) -> None:
        if self.n_items is None:
            return
        expected = min(k, self.n_items)
        if len(items) != expected:
            raise ConfigurationError(
                f"refusing to cache a top-{k} list of length {len(items)} "
                f"(expected {expected} for a {self.n_items}-item catalog): "
                "a short list would poison every later hit on this key"
            )

    @property
    def version(self) -> int:
        """Number of injections observed since construction/flush."""
        return self._version

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, user_id: int, k: int, exclude_seen: bool = True) -> np.ndarray | None:
        """Cached list for the key, or None on miss/staleness."""
        key = (int(user_id), int(k), bool(exclude_seen))
        entry = self._entries.get(key)
        if entry is not None:
            items, stored_version = entry
            if self._version - stored_version <= self.ttl_injections:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return items
            # Stale under the TTL horizon: drop and treat as a miss.
            del self._entries[key]
            self.stats.invalidations += 1
        self.stats.misses += 1
        return None

    def store(self, user_id: int, k: int, exclude_seen: bool, items: np.ndarray) -> None:
        """Insert/update an entry stamped with the current version.

        A private read-only copy is stored: a caller mutating a previously
        returned list must never silently corrupt later cache hits (hits
        raise on write attempts instead).
        """
        k = int(k)
        self._check_length(k, items)
        key = (int(user_id), k, bool(exclude_seen))
        items = items.copy()
        items.setflags(write=False)
        self._entries[key] = (items, self._version)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def lookup_batch(
        self, user_ids: Sequence[int], k: int, exclude_seen: bool = True
    ) -> tuple[list[np.ndarray | None], np.ndarray]:
        """Batched :meth:`lookup` over ``user_ids`` in one pass.

        Returns ``(results, miss_positions)``: one entry per requested
        user (``None`` on miss) plus the positions that missed, ready to
        index the caller's user array.  Observationally identical to a
        scalar ``lookup`` loop — same hit/miss/invalidation counters,
        same LRU recency updates, in the same order — but the key tuple
        and the TTL horizon are built/checked once per batch instead of
        once per user, and the stats counters are written once at the
        end.
        """
        k = int(k)
        exclude_seen = bool(exclude_seen)
        entries = self._entries
        min_version = self._version - self.ttl_injections
        hits = misses = invalidations = 0
        results: list[np.ndarray | None] = []
        miss_positions: list[int] = []
        for position, user_id in enumerate(user_ids):
            key = (int(user_id), k, exclude_seen)
            entry = entries.get(key)
            if entry is not None:
                if entry[1] >= min_version:
                    entries.move_to_end(key)
                    hits += 1
                    results.append(entry[0])
                    continue
                # Stale under the TTL horizon: drop and treat as a miss.
                del entries[key]
                invalidations += 1
            misses += 1
            results.append(None)
            miss_positions.append(position)
        stats = self.stats
        stats.hits += hits
        stats.misses += misses
        stats.invalidations += invalidations
        return results, np.asarray(miss_positions, dtype=np.int64)

    def store_batch(
        self,
        user_ids: Sequence[int],
        k: int,
        exclude_seen: bool,
        items_per_user: Sequence[np.ndarray],
    ) -> None:
        """Batched :meth:`store` of one list per user in ``user_ids``.

        Eviction pressure is applied after every insert (not once at the
        end), so interleaving with re-stores of resident keys evicts
        exactly what the scalar loop would; the eviction counter is
        written once per batch.
        """
        k = int(k)
        exclude_seen = bool(exclude_seen)
        entries = self._entries
        version = self._version
        capacity = self.capacity
        evictions = 0
        for user_id, items in zip(user_ids, items_per_user):
            self._check_length(k, items)
            items = items.copy()
            items.setflags(write=False)
            key = (int(user_id), k, exclude_seen)
            entries[key] = (items, version)
            entries.move_to_end(key)
            while len(entries) > capacity:
                entries.popitem(last=False)
                evictions += 1
        if evictions:
            self.stats.evictions += evictions

    def note_injection(self) -> None:
        """Advance the version; flush everything in strict mode."""
        self._version += 1
        if self.ttl_injections == 0 and self._entries:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()

    def flush(self) -> None:
        """Drop every entry and reset the version (used on snapshot restore).

        ``version`` promises "injections observed since construction/
        flush"; resetting it here is safe because every entry is dropped
        with it, so no surviving entry can be mis-aged by the rewind.
        """
        if self._entries:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()
        self._version = 0

    def staleness(self, user_id: int, k: int, exclude_seen: bool = True) -> int | None:
        """Injections elapsed since the entry was stored.

        ``None`` if the key is absent *or* the entry has aged past the
        TTL horizon — an expired entry would never be served (``lookup``
        counts it as an invalidation plus a miss), so reporting its age
        as if it were live misrepresented cache contents.
        """
        entry = self._entries.get((int(user_id), int(k), bool(exclude_seen)))
        if entry is None:
            return None
        age = self._version - entry[1]
        if age > self.ttl_injections:
            return None
        return age
