"""Online learning: organic-traffic ticks driving retrain-and-rollout.

The serving stack so far treats the model as frozen between explicit
injections; real platforms fold **organic interactions** (users actually
clicking recommended items) back into the model continuously.  This
module closes that loop without ever mutating the serving model in
place:

1. organic interactions arrive in ticks (:meth:`OnlineLearner.observe`)
   and accumulate in a pending buffer;
2. a :class:`RetrainPolicy` decides when enough signal accumulated —
   every N ticks (:class:`EveryNTicks`) or once interaction volume
   crosses a drift threshold (:class:`DriftThreshold`);
3. when the policy fires, the learner builds a **candidate**: a deep
   copy of the serving model advanced with
   :meth:`~repro.recsys.base.Recommender.partial_fit` over the buffered
   interactions — the serving model itself is never touched;
4. the candidate enters the fleet through the versioned rollout protocol
   (:meth:`~repro.serving.sharded.ShardedRecommendationService.stage_rollout`):
   canary on one shard, shadow comparison on the rest, promote or
   auto-rollback by guard verdict.

Separating "when to retrain" (policy) from "how to retrain"
(``partial_fit``) from "how to deploy" (rollout) keeps each axis
independently testable — and means a poisoned retrain can be *caught at
the rollout boundary* instead of silently replacing the fleet's model,
which is what the attack-survival experiment measures.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.rollout import RolloutGuard
    from repro.serving.sharded import ShardedRecommendationService

__all__ = ["RetrainPolicy", "EveryNTicks", "DriftThreshold", "OnlineLearner"]


class RetrainPolicy:
    """Decides when buffered organic traffic justifies a retrain."""

    def note_tick(self, n_interactions: int) -> bool:
        """Record one traffic tick; return True to trigger a retrain."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget accumulated trigger state (after a retrain fires)."""
        raise NotImplementedError


class EveryNTicks(RetrainPolicy):
    """Fixed-cadence retraining: fire on every ``n_ticks``-th tick."""

    def __init__(self, n_ticks: int) -> None:
        if n_ticks <= 0:
            raise ConfigurationError("n_ticks must be positive")
        self.n_ticks = n_ticks
        self.ticks = 0

    def note_tick(self, n_interactions: int) -> bool:
        self.ticks += 1
        return self.ticks >= self.n_ticks

    def reset(self) -> None:
        self.ticks = 0


class DriftThreshold(RetrainPolicy):
    """Volume-driven retraining: fire once enough interactions accumulate.

    Interaction volume is the simplest drift proxy the serving layer can
    observe without model access — every interaction moves the model's
    view of the world away from what it was trained on, so "how much
    unabsorbed signal is buffered" approximates drift magnitude.
    """

    def __init__(self, min_interactions: int) -> None:
        if min_interactions <= 0:
            raise ConfigurationError("min_interactions must be positive")
        self.min_interactions = min_interactions
        self.pending = 0

    def note_tick(self, n_interactions: int) -> bool:
        self.pending += int(n_interactions)
        return self.pending >= self.min_interactions

    def reset(self) -> None:
        self.pending = 0


class OnlineLearner:
    """Folds organic traffic into candidate models and stages rollouts.

    One learner fronts one
    :class:`~repro.serving.sharded.ShardedRecommendationService`.  It
    never mutates the serving model: candidates are deep copies advanced
    with ``partial_fit``, entering the fleet only through the rollout
    protocol, where the guard can still reject them.
    """

    def __init__(
        self,
        service: "ShardedRecommendationService",
        policy: RetrainPolicy,
        canary_shard: int = 0,
        guard: "RolloutGuard | None" = None,
    ) -> None:
        if not service.model.supports_partial_fit:
            raise ConfigurationError(
                f"{type(service.model).__name__} does not support partial_fit; "
                "online learning needs an incrementally updatable model"
            )
        self.service = service
        self.policy = policy
        self.canary_shard = canary_shard
        self.guard = guard
        self.pending: list[tuple[int, int]] = []
        #: Retrains staged so far (version numbers), for reporting.
        self.staged_versions: list[int] = []

    def observe(self, interactions: Sequence[tuple[int, int]]) -> int | None:
        """Buffer one tick of organic interactions; maybe stage a retrain.

        Returns the staged version number when this tick triggered a
        retrain-and-stage, None otherwise.  Ticks arriving while a
        canary window is already open keep buffering — the fleet decides
        one version at a time, and the buffered signal rides into the
        next candidate.
        """
        self.pending.extend((int(u), int(v)) for u, v in interactions)
        if not self.policy.note_tick(len(interactions)):
            return None
        if self.service.rollout_active or not self.pending:
            return None
        candidate = copy.deepcopy(self.service.model)
        candidate.partial_fit(self.pending)
        version = self.service.stage_rollout(
            candidate, canary_shard=self.canary_shard, guard=self.guard
        )
        self.pending = []
        self.policy.reset()
        self.staged_versions.append(version)
        return version
