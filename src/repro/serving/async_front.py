"""Asyncio serving front: bounded admission, load shedding, tail latency.

The closed-loop replay (:class:`~repro.serving.traffic.TrafficSimulator`)
issues the next request only when the previous one returns, so it can
never observe what a production platform actually fears: requests
*arriving* faster than they complete.  At 4 shards the coordinator is
pinned by the modelled 2 ms per-slice RPC floor — a closed loop pays
that floor once per request (~32k users/s at 64-user cohorts) no matter
how many shards overlap *within* a request.  The only way past it is to
overlap RPC waits *across* requests, which is exactly what an event loop
buys: while one request's shard slices are awaiting their modelled RPC,
the loop starts the next request's slices.

This module provides that front:

* :class:`BoundedAdmissionQueue` — pure (no asyncio, no threads)
  admission logic: a bounded FIFO plus a waiting list, with the three
  overload policies and conservation-law counters.  Keeping it
  synchronous makes the hypothesis property test in
  ``tests/test_serving_async_front.py`` exhaustive — arbitrary
  offer/take/give-up interleavings, no event loop required.
* :class:`AsyncServingFront` — the asyncio loop around a service: an
  open-loop arrival coroutine replays timestamped
  :class:`FrontRequest`\\ s, offers them to the queue, and a pool of
  worker coroutines serves them via
  :meth:`~repro.serving.sharded.ShardedRecommendationService.query_async`
  (falling back to the sync ``query`` on an executor thread for
  non-async engines).  Every request carries arrival/start/completion
  timestamps, so the report finally separates **queueing latency**
  (arrival→completion — what a client feels) from service time
  (start→completion — what the coordinator spends).

Overload policies (``FrontConfig.policy``):

* ``block`` — a full queue makes new arrivals *wait* for space, up to
  ``admission_timeout_s`` (then they count as ``timed_out``).  Latency
  absorbs the overload; nothing is dropped until patience runs out.
* ``shed_newest`` — a full queue rejects the arriving request
  immediately.  Queued work is protected; tail latency stays bounded at
  the cost of fresh arrivals.
* ``shed_oldest`` — a full queue admits the arrival and drops the
  *oldest* queued request.  Freshness is protected (the queue never
  serves stale work after a flash crowd passes) at the cost of
  abandoning requests that already waited.

Micro-batching (``batch_window_s > 0``): a worker that takes a request
may linger for the window and coalesce queued requests with the same
``(k, exclude_seen, client)`` into one service call, amortising
per-request coordinator overhead under load.  Off by default — the
coalesced call dedups overlapping users inside the service cache, so
cache counters differ from request-at-a-time serving (which is why the
engine-conformance suite never enables it).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError, RateLimitExceededError
from repro.serving.metrics import percentile_summary, summarize_latencies

__all__ = [
    "OVERLOAD_POLICIES",
    "FrontConfig",
    "FrontRequest",
    "RequestTicket",
    "BoundedAdmissionQueue",
    "FrontReport",
    "AsyncServingFront",
]

#: How a full admission queue treats new arrivals (see module docstring).
OVERLOAD_POLICIES = ("block", "shed_newest", "shed_oldest")


@dataclass(frozen=True)
class FrontConfig:
    """Async front tuning knobs.

    ``max_queue`` bounds admitted-but-unserved requests;
    ``max_concurrency`` bounds requests in service at once (worker
    coroutines).  ``admission_timeout_s`` only applies to the ``block``
    policy (``None`` waits forever).  ``batch_window_s``/
    ``max_batch_requests`` control optional micro-batching.
    """

    max_queue: int = 64
    policy: str = "block"
    admission_timeout_s: float | None = 1.0
    max_concurrency: int = 16
    batch_window_s: float = 0.0
    max_batch_requests: int = 8

    def __post_init__(self) -> None:
        if self.max_queue <= 0:
            raise ConfigurationError("max_queue must be positive")
        if self.policy not in OVERLOAD_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {OVERLOAD_POLICIES}, got {self.policy!r}"
            )
        if self.admission_timeout_s is not None and self.admission_timeout_s <= 0:
            raise ConfigurationError("admission_timeout_s must be positive or None")
        if self.max_concurrency <= 0:
            raise ConfigurationError("max_concurrency must be positive")
        if self.batch_window_s < 0:
            raise ConfigurationError("batch_window_s must be non-negative")
        if self.max_batch_requests <= 0:
            raise ConfigurationError("max_batch_requests must be positive")


@dataclass(frozen=True, eq=False)
class FrontRequest:
    """One timestamped top-k request in an open-loop replay plan."""

    at_s: float  # arrival offset from replay start, seconds
    users: np.ndarray
    k: int = 20
    client: str = "organic"
    exclude_seen: bool = True

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigurationError("at_s must be non-negative")
        if self.k <= 0:
            raise ConfigurationError("k must be positive")


@dataclass(eq=False)
class RequestTicket:
    """A request's lifecycle through the front (timestamps in clock seconds).

    ``outcome`` ends as one of ``ok``, ``shed``, ``timed_out``,
    ``rate_limited``, or ``failed``.  ``arrival_s`` is the actual offer
    time, ``start_s`` the moment a worker began serving (queue wait =
    ``start_s - arrival_s``), ``completion_s`` when results (or the
    terminal denial) landed — queueing latency is
    ``completion_s - arrival_s``.
    """

    index: int
    request: FrontRequest
    arrival_s: float = 0.0
    start_s: float | None = None
    completion_s: float | None = None
    outcome: str = "pending"
    results: list[np.ndarray] | None = None
    admit_future: asyncio.Future | None = field(default=None, repr=False)

    @property
    def n_users(self) -> int:
        return int(self.request.users.size)


class BoundedAdmissionQueue:
    """Bounded FIFO + waiting list implementing the overload policies.

    Pure synchronous logic — the async front drives it from one event
    loop (so calls never race), and the hypothesis property test drives
    it directly.  Conservation law (pinned by that test)::

        n_offered == n_shed + n_timed_out + n_taken + occupancy + n_waiting

    ``n_accepted`` (``n_taken + occupancy``) counts offers that made it
    into the queue and were never displaced.  Note ``shed_oldest`` sheds
    *previously admitted* items, so "accepted" is a statement about
    final fate, not the admission-time verdict.
    """

    def __init__(self, capacity: int, policy: str = "block") -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if policy not in OVERLOAD_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {OVERLOAD_POLICIES}, got {policy!r}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self._items: deque = deque()
        self._waiting: deque = deque()
        self.n_offered = 0
        self.n_shed = 0
        self.n_timed_out = 0
        self.n_taken = 0
        self.peak_occupancy = 0

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def n_waiting(self) -> int:
        return len(self._waiting)

    @property
    def n_accepted(self) -> int:
        return self.n_taken + self.occupancy

    def _note_peak(self) -> None:
        if len(self._items) > self.peak_occupancy:
            self.peak_occupancy = len(self._items)

    def offer(self, item) -> tuple[str, object | None]:
        """Offer ``item``; returns ``(status, displaced)``.

        ``("admitted", None)`` — queued.  ``("admitted", old)`` — queued
        by displacing ``old`` (``shed_oldest``; ``old`` counts as shed).
        ``("shed", None)`` — rejected outright (``shed_newest``).
        ``("blocked", None)`` — queue full under ``block``; ``item``
        joined the waiting list and will be promoted by a later
        :meth:`take` unless it :meth:`give_up`\\ s first.
        """
        self.n_offered += 1
        if len(self._items) < self.capacity:
            self._items.append(item)
            self._note_peak()
            return "admitted", None
        if self.policy == "shed_newest":
            self.n_shed += 1
            return "shed", None
        if self.policy == "shed_oldest":
            displaced = self._items.popleft()
            self._items.append(item)
            self.n_shed += 1
            return "admitted", displaced
        self._waiting.append(item)
        return "blocked", None

    def take(self) -> tuple[object | None, object | None]:
        """Pop the oldest queued item; returns ``(item, promoted)``.

        ``promoted`` is a waiting item moved into the freed slot (the
        caller must resolve its admission future), or ``None``.  An
        empty queue returns ``(None, None)``.
        """
        if not self._items:
            return None, None
        item = self._items.popleft()
        self.n_taken += 1
        promoted = None
        if self._waiting:
            promoted = self._waiting.popleft()
            self._items.append(promoted)
            self._note_peak()
        return item, promoted

    def peek(self):
        """The oldest queued item without removing it (``None`` if empty)."""
        return self._items[0] if self._items else None

    def give_up(self, item) -> bool:
        """A blocked item stops waiting (admission timeout).

        ``True`` if it was still waiting (now counted ``timed_out``);
        ``False`` if it had already been promoted into the queue — the
        item stays queued and will be served normally.
        """
        try:
            self._waiting.remove(item)
        except ValueError:
            return False
        self.n_timed_out += 1
        return True


@dataclass
class FrontReport:
    """Outcome of one open-loop replay through the async front."""

    n_offered: int
    n_ok: int
    n_shed: int
    n_timed_out: int
    n_rate_limited: int
    n_failed: int
    n_users_offered: int
    n_users_served: int
    duration_s: float
    users_per_s: float
    requests_per_s: float
    peak_occupancy: int
    latency: dict[str, float] = field(default_factory=dict)  # arrival→completion
    queue_wait: dict[str, float] = field(default_factory=dict)  # arrival→start
    service_time: dict[str, float] = field(default_factory=dict)  # start→completion

    def to_dict(self) -> dict:
        return {
            "n_offered": self.n_offered,
            "n_ok": self.n_ok,
            "n_shed": self.n_shed,
            "n_timed_out": self.n_timed_out,
            "n_rate_limited": self.n_rate_limited,
            "n_failed": self.n_failed,
            "n_users_offered": self.n_users_offered,
            "n_users_served": self.n_users_served,
            "duration_s": self.duration_s,
            "users_per_s": self.users_per_s,
            "requests_per_s": self.requests_per_s,
            "peak_occupancy": self.peak_occupancy,
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "service_time": self.service_time,
        }


def _compatible(a: RequestTicket, b: RequestTicket) -> bool:
    ra, rb = a.request, b.request
    return ra.k == rb.k and ra.exclude_seen == rb.exclude_seen and ra.client == rb.client


class AsyncServingFront:
    """Asyncio request loop fronting a recommendation service.

    :meth:`replay` runs a timestamped request plan open-loop: arrivals
    land at their scheduled times regardless of service speed, so the
    admission queue genuinely fills under overload and the report's
    arrival→completion percentiles are real queueing latency.  Works
    against any service; pairs with the async engine
    (``ShardedRecommendationService(..., engine="async")``) to overlap
    modelled RPC waits across in-flight requests — with a sync-engine
    service, queries run on executor threads instead and the front still
    provides admission control and queueing metrics.
    """

    def __init__(
        self,
        service,
        config: FrontConfig | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.service = service
        self.config = config if config is not None else FrontConfig()
        self._clock = clock
        self.tickets: list[RequestTicket] = []

    # -- public entry points -------------------------------------------------
    def replay(self, requests: Sequence[FrontRequest]) -> FrontReport:
        """Run the plan on a fresh event loop (blocking convenience wrapper)."""
        return asyncio.run(self.replay_async(requests))

    async def replay_async(self, requests: Sequence[FrontRequest]) -> FrontReport:
        """Replay ``requests`` open-loop; returns the latency report.

        Service-level failures other than rate limiting mark their
        tickets ``failed`` and re-raise (the first one) *after* the
        drain — a worker must never die mid-replay and leave queued
        tickets unserved (the replay would hang).
        """
        loop = asyncio.get_running_loop()
        config = self.config
        self._queue = BoundedAdmissionQueue(config.max_queue, config.policy)
        self._wake = asyncio.Event()
        self._draining = False
        self._errors: list[BaseException] = []
        engine = getattr(self.service, "_engine", None)
        self._use_async = (
            hasattr(self.service, "query_async")
            and getattr(engine, "run_async", None) is not None
        )
        plan = sorted(requests, key=lambda request: request.at_s)
        self.tickets = [RequestTicket(index=i, request=r) for i, r in enumerate(plan)]
        self._t0 = self._clock()

        workers = [
            loop.create_task(self._worker()) for _ in range(config.max_concurrency)
        ]
        waiters = await self._arrivals(loop)
        if waiters:
            await asyncio.gather(*waiters)
        # All offers resolved (queued, shed, or timed out) — drain workers.
        self._draining = True
        self._wake.set()
        await asyncio.gather(*workers)
        if self._errors:
            raise self._errors[0]
        return self._build_report()

    # -- replay internals ----------------------------------------------------
    async def _arrivals(self, loop: asyncio.AbstractEventLoop) -> list[asyncio.Task]:
        """Offer each ticket at its scheduled time; returns waiter tasks."""
        waiters: list[asyncio.Task] = []
        for ticket in self.tickets:
            delay = self._t0 + ticket.request.at_s - self._clock()
            if delay > 0:
                await asyncio.sleep(delay)
            now = self._clock()
            ticket.arrival_s = now
            status, displaced = self._queue.offer(ticket)
            if displaced is not None:
                self._finish_denied(displaced, "shed")
            if status == "admitted":
                self._wake.set()
            elif status == "shed":
                self._finish_denied(ticket, "shed")
            else:  # blocked: future must exist before any take() can promote
                ticket.admit_future = loop.create_future()
                waiters.append(loop.create_task(self._await_admission(ticket)))
        return waiters

    async def _await_admission(self, ticket: RequestTicket) -> None:
        try:
            await asyncio.wait_for(ticket.admit_future, self.config.admission_timeout_s)
        except asyncio.TimeoutError:
            if self._queue.give_up(ticket):
                self._finish_denied(ticket, "timed_out")
            # else: promoted on the same tick the timeout fired — the
            # ticket is already queued and a worker will serve it.
        self._wake.set()

    def _resolve_promotion(self, promoted: RequestTicket | None) -> None:
        if promoted is None:
            return
        future = promoted.admit_future
        if future is not None and not future.done():
            future.set_result(True)

    async def _worker(self) -> None:
        config = self.config
        queue = self._queue
        while True:
            ticket, promoted = queue.take()
            self._resolve_promotion(promoted)
            if ticket is None:
                if self._draining and queue.n_waiting == 0:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            batch = [ticket]
            if config.batch_window_s > 0.0:
                await asyncio.sleep(config.batch_window_s)
                while len(batch) < config.max_batch_requests:
                    head = queue.peek()
                    if head is None or not _compatible(head, ticket):
                        break
                    coalesced, promoted = queue.take()
                    self._resolve_promotion(promoted)
                    batch.append(coalesced)
            await self._serve_batch(batch)

    async def _serve_batch(self, batch: list[RequestTicket]) -> None:
        start = self._clock()
        profiler = getattr(self.service, "profiler", None)
        for ticket in batch:
            ticket.start_s = start
            if profiler is not None:
                profiler.add("queue", start - ticket.arrival_s, ticket.n_users)
        request = batch[0].request
        users = (
            request.users
            if len(batch) == 1
            else np.concatenate([ticket.request.users for ticket in batch])
        )
        try:
            results = await self._execute(
                users, request.k, request.exclude_seen, request.client
            )
        except RateLimitExceededError:
            now = self._clock()
            for ticket in batch:
                ticket.outcome = "rate_limited"
                ticket.completion_s = now
            return
        except Exception as exc:  # noqa: BLE001 — re-raised after the drain
            self._errors.append(exc)
            now = self._clock()
            for ticket in batch:
                ticket.outcome = "failed"
                ticket.completion_s = now
            return
        now = self._clock()
        offset = 0
        for ticket in batch:
            ticket.results = results[offset : offset + ticket.n_users]
            offset += ticket.n_users
            ticket.outcome = "ok"
            ticket.completion_s = now

    async def _execute(
        self, users: np.ndarray, k: int, exclude_seen: bool, client: str
    ) -> list[np.ndarray]:
        if self._use_async:
            return await self.service.query_async(
                users, k, exclude_seen=exclude_seen, client=client
            )
        return await asyncio.get_running_loop().run_in_executor(
            None,
            partial(
                self.service.query, users, k, exclude_seen=exclude_seen, client=client
            ),
        )

    def _finish_denied(self, ticket: RequestTicket, outcome: str) -> None:
        ticket.outcome = outcome
        ticket.completion_s = self._clock()
        stats = getattr(self.service, "stats", None)
        if stats is not None:
            if outcome == "shed":
                stats.record_shed()
            else:
                stats.record_timed_out()

    # -- reporting -----------------------------------------------------------
    def _build_report(self) -> FrontReport:
        duration = max(
            [self._clock() - self._t0]
            + [t.completion_s - self._t0 for t in self.tickets if t.completion_s]
        )
        ok = [t for t in self.tickets if t.outcome == "ok"]
        outcomes = {t.outcome for t in self.tickets}
        assert "pending" not in outcomes or not self.tickets, outcomes
        n_users_served = sum(t.n_users for t in ok)
        latency = summarize_latencies([t.completion_s - t.arrival_s for t in ok])
        queue_wait = percentile_summary([t.start_s - t.arrival_s for t in ok])
        service_time = percentile_summary([t.completion_s - t.start_s for t in ok])
        count = lambda outcome: sum(t.outcome == outcome for t in self.tickets)  # noqa: E731
        return FrontReport(
            n_offered=len(self.tickets),
            n_ok=len(ok),
            n_shed=count("shed"),
            n_timed_out=count("timed_out"),
            n_rate_limited=count("rate_limited"),
            n_failed=count("failed"),
            n_users_offered=sum(t.n_users for t in self.tickets),
            n_users_served=n_users_served,
            duration_s=duration,
            users_per_s=n_users_served / duration if duration > 0 else 0.0,
            requests_per_s=len(ok) / duration if duration > 0 else 0.0,
            peak_occupancy=self._queue.peak_occupancy,
            latency=latency,
            queue_wait=queue_wait,
            service_time=service_time,
        )
