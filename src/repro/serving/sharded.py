"""Sharded multi-worker deployment of the recommendation service.

A production platform at the ROADMAP's target scale does not serve every
user from one process: the user base is partitioned across worker shards,
each holding its own result cache and quota state, with a thin
coordinator that fans batched queries out and merges the results.  This
module models that deployment while **pinning its externally observable
behaviour to the single-service semantics** of
:class:`~repro.serving.service.RecommendationService` (the parity test
harness in ``tests/test_serving_sharded_parity.py`` enforces element-wise
identical top-k lists):

* **routing** — users map to shards by stable hash
  (:class:`ShardRouter`) or over a consistent-hash ring
  (:class:`ConsistentHashRouter`, which moves only ~1/n of the keys when
  a shard is added).  A client's quota state lives on one home shard, so
  per-shard rate limiting is observationally identical to a global
  limiter.
* **per-shard caches** — each shard owns an LRU
  :class:`~repro.serving.cache.TopKCache`.  Because duplicate users in a
  request always route to the same shard, per-request dedup/batching
  matches the single service exactly.
* **invalidation bus** — every injection is published on an
  :class:`InvalidationBus` that all shards subscribe to, so strict mode
  never serves a stale list from *any* shard and TTL mode advances every
  shard's staleness clock in lockstep (identical to the single cache's
  version counter).

How a request's per-shard slices execute is an
:class:`~repro.serving.engine.ExecutionEngine` policy (``serial``,
``threaded``, ``process``, or ``async``, selected by
``ServingConfig.engine`` or the ``engine`` constructor argument).  Under the *serial* engine,
per-shard busy time still feeds the historical **simulated** makespan
model (parallel wall time = the busiest worker's accumulated busy
time).  Under the *threaded* engine a persistent one-worker-per-shard
pool resolves the slices concurrently, so a replay's wall clock is
**measured** parallel time; the shard-scaling benchmark
(``repro-bench serve``) reports both side by side.

Under the *process* engine the shards stop sharing memory entirely:
each shard's serving state (a model replica, its cache, its limiter
policies, its stats) is serialized into a persistent worker process at
pool start, and the coordinator keeps the replicas in lockstep through
an epoch-stamped replication protocol (see :mod:`repro.serving.replica`):

* the coordinator's model is the source of truth; its version is a
  monotonically increasing **epoch** (bumped by every injection and
  every episode restore);
* every injection publishes a :class:`~repro.serving.replica.ReplicationEvent`
  on the :class:`InvalidationBus` carrying the profile, the new epoch,
  and the coordinator's freshly **pre-warmed** lazy scoring caches
  (:meth:`~repro.recsys.base.Recommender.prewarm` — built exactly once,
  installed verbatim by every replica instead of N duplicate rebuilds);
* every restore publishes a ``resync`` event shipping the rolled-back
  model wholesale;
* every query slice carries the coordinator's epoch, and a replica
  whose state lags raises
  :class:`~repro.errors.StaleReplicaError` instead of silently serving
  a pre-injection model version — staleness is *detectable*, never
  silent (acknowledged epochs are pinned by a hypothesis property
  test);
* per-shard stats and cache counters accrue inside the workers and are
  shipped back with every slice result and replication ack, then merged
  into coordinator-side mirror shards, so reports and the
  engine-conformance counters are identical across engines.

Client admission (rate limiting) stays at the coordinator front door in
every mode: a client's admissions must serialize *before* fan-out for
per-shard quota state to be observationally identical to one global
limiter, so the home-shard limiter mirrors are authoritative and the
replicated worker-side limiters see no traffic in this deployment.

Thread-safety contract (what makes the threaded engine correct):

* every piece of per-shard mutable state — the shard's cache, its quota
  windows, its :class:`~repro.serving.service.ServiceStats` — is guarded
  by that shard's lock and touched only while it is held (by the worker
  resolving the shard's slice, by bus-driven invalidations, and by
  episode restores);
* the model is shared read-only on the query path; injections and
  restores, which mutate it, take the write side of a
  :class:`~repro.serving.engine.ReadWriteLock` that queries hold for
  reading, so scoring never races a profile landing.  (One scoped
  exception to "read-only": some models lazily rebuild an idempotent
  scoring cache on first use after an injection — ItemKNN's similarity
  matrix, NeuralCF's fused first-layer tensor.  The build is atomic to
  publish and identical from every thread, so concurrent workers can at
  worst duplicate the work, never corrupt it);
* coordinator-level counters (:class:`ServiceStats`, the
  :class:`~repro.serving.rate_limit.RateLimiter` admission windows) are
  internally locked.
"""

from __future__ import annotations

import asyncio
import bisect
import pickle
import time
import zlib
from functools import partial
from threading import Lock
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import (
    ConfigurationError,
    RateLimitExceededError,
    RolloutError,
    StaleReplicaError,
)
from repro.serving import replica as replica_proto
from repro.serving import shared_state
from repro.serving.cache import CacheStats, TopKCache
from repro.serving.engine import ExecutionEngine, ReadWriteLock, make_engine
from repro.serving.rate_limit import UNLIMITED, RateLimiter
from repro.serving.replica import CacheSnapshot, InjectionRecord, ReplicationEvent
from repro.serving.rollout import ModelVersionRegistry, RolloutController, RolloutGuard
from repro.serving.service import RecommendationService, ServiceStats, ServingConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recsys.base import Recommender

__all__ = [
    "ShardRouter",
    "ConsistentHashRouter",
    "InvalidationBus",
    "ShardedRecommendationService",
    "group_by_shard",
    "scatter_to_request_order",
]

_ROUTINGS = ("hash", "consistent")


def _stable_hash(key: str | int) -> int:
    """Process-stable 32-bit hash (Python's ``hash`` is salted per run)."""
    data = key.to_bytes(8, "little", signed=True) if isinstance(key, int) else key.encode()
    return zlib.crc32(data)


def _build_crc32_table() -> np.ndarray:
    """The standard CRC-32 byte table (reflected polynomial 0xEDB88320)."""
    table = np.arange(256, dtype=np.uint32)
    for _ in range(8):
        table = np.where(table & 1, np.uint32(0xEDB88320) ^ (table >> 1), table >> 1)
    return table.astype(np.uint32)


_CRC32_TABLE = _build_crc32_table()


def _stable_hash_array(user_ids: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_stable_hash` over an int64 user-id array.

    Bit-identical to ``zlib.crc32`` of each id's 8 little-endian signed
    bytes (the scalar path), computed as eight table-driven byte rounds
    over the whole array — one numpy pass per byte instead of one Python
    call per user.
    """
    raw = np.ascontiguousarray(user_ids, dtype=np.int64).view(np.uint64)
    crc = np.full(raw.shape, 0xFFFFFFFF, dtype=np.uint32)
    for shift in range(0, 64, 8):
        byte = ((raw >> np.uint64(shift)) & np.uint64(0xFF)).astype(np.uint32)
        crc = _CRC32_TABLE[(crc ^ byte) & np.uint32(0xFF)] ^ (crc >> np.uint32(8))
    return crc ^ np.uint32(0xFFFFFFFF)


class ShardRouter:
    """Stable modulo-hash routing of users and clients to shards."""

    def __init__(self, n_shards: int) -> None:
        if n_shards <= 0:
            raise ConfigurationError("n_shards must be positive")
        self.n_shards = n_shards

    def shard_for_user(self, user_id: int) -> int:
        return _stable_hash(int(user_id)) % self.n_shards

    def shards_for_users(self, user_ids: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`shard_for_user` over an array of user ids.

        One CRC pass and one modulo over the whole array; element-wise
        identical to the scalar method (pinned by the router equivalence
        tests), so the two paths are interchangeable on the hot path.
        """
        hashes = _stable_hash_array(np.asarray(user_ids, dtype=np.int64))
        return (hashes % np.uint32(self.n_shards)).astype(np.int64)

    def shard_for_client(self, client: str) -> int:
        """Home shard holding the client's rate-limiter state."""
        return _stable_hash(client) % self.n_shards


class ConsistentHashRouter(ShardRouter):
    """Consistent-hash ring with virtual nodes.

    Keys map to the first ring point at-or-clockwise-after their hash
    (a key whose hash lands exactly on a ring point belongs to that
    point).  Adding a shard re-routes only the keys that fall into the
    new shard's arcs (~1/n of the space), where modulo routing would
    remap almost all of them — the property that makes cache warm-up
    survive resharding.

    When two virtual nodes hash-collide, the colliding ring position is
    owned by exactly one of them — deterministically the lowest shard
    index — so key placement never depends on sort tie order versus
    bisection direction.  The ring therefore contains strictly
    increasing hashes.
    """

    def __init__(self, n_shards: int, n_replicas: int = 64) -> None:
        super().__init__(n_shards)
        if n_replicas <= 0:
            raise ConfigurationError("n_replicas must be positive")
        self.n_replicas = n_replicas
        points = [
            (_stable_hash(f"shard-{shard}#vnode-{replica}"), shard)
            for shard in range(n_shards)
            for replica in range(n_replicas)
        ]
        points.sort()
        self._ring_hashes: list[int] = []
        self._ring_shards: list[int] = []
        for hashed, shard in points:
            if self._ring_hashes and self._ring_hashes[-1] == hashed:
                # Virtual-node hash collision: tuple sort already placed
                # the lowest shard index first; keep it, drop the rest.
                continue
            self._ring_hashes.append(hashed)
            self._ring_shards.append(shard)
        # Array views of the ring for the vectorised lookup path
        # (np.searchsorted side="left" ≡ bisect_left on these).
        self._ring_hash_array = np.asarray(self._ring_hashes, dtype=np.uint32)
        self._ring_shard_array = np.asarray(self._ring_shards, dtype=np.int64)

    def _locate(self, hashed: int) -> int:
        index = bisect.bisect_left(self._ring_hashes, hashed)
        if index == len(self._ring_hashes):
            index = 0  # wrap around the ring
        return self._ring_shards[index]

    def shard_for_user(self, user_id: int) -> int:
        return self._locate(_stable_hash(int(user_id)))

    def shards_for_users(self, user_ids: np.ndarray) -> np.ndarray:
        """Vectorised ring lookup: one CRC pass, one ``searchsorted``."""
        hashes = _stable_hash_array(np.asarray(user_ids, dtype=np.int64))
        index = np.searchsorted(self._ring_hash_array, hashes, side="left")
        index[index == self._ring_hash_array.size] = 0  # wrap around the ring
        return self._ring_shard_array[index]

    def shard_for_client(self, client: str) -> int:
        return self._locate(_stable_hash(client))


def group_by_shard(
    router: ShardRouter, users: np.ndarray
) -> tuple[np.ndarray, list[tuple[int, np.ndarray, np.ndarray]]]:
    """Group request positions by owning shard in one argsort pass.

    Returns ``(order, slices)``: ``order`` is the request positions
    sorted by shard (the scatter index for
    :func:`scatter_to_request_order`), and ``slices`` is one
    ``(shard_index, positions, slice_users)`` triple per non-empty
    shard, where ``positions``/``slice_users`` are contiguous views into
    the sorted arrays.  The sort is *stable*, so users keep their
    request order within each shard — the property that makes per-shard
    cache hit/miss sequences identical to the historical per-user
    ``setdefault`` grouping loop.
    """
    if users.size == 0:
        return np.empty(0, dtype=np.int64), []
    shards = router.shards_for_users(users)
    order = np.argsort(shards, kind="stable")
    sorted_shards = shards[order]
    sorted_users = users[order]
    boundaries = np.flatnonzero(sorted_shards[1:] != sorted_shards[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [sorted_shards.size]))
    slices = [
        (int(sorted_shards[start]), order[start:end], sorted_users[start:end])
        for start, end in zip(starts.tolist(), ends.tolist())
    ]
    return order, slices


def scatter_to_request_order(
    order: np.ndarray, per_slice_results: Sequence[Sequence[np.ndarray]]
) -> list[np.ndarray]:
    """Merge per-slice top-k rows back into request order in one scatter.

    Every row of a request shares the same length (``min(k, n_items)``),
    so the slice results stack into one 2-D block and a single
    fancy-indexed assignment restores request order — replacing the
    historical per-position Python merge loop.  ``order`` is the
    position array from :func:`group_by_shard`; slice results must be
    concatenated in the same slice order.
    """
    blocks = [np.asarray(rows, dtype=np.int64) for rows in per_slice_results]
    stacked = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=0)
    merged = np.empty_like(stacked)
    merged[order] = stacked
    return list(merged)


class InvalidationBus:
    """Broadcasts replication events to every subscribed shard.

    The bus is the mechanism that keeps per-shard state in lockstep with
    the coordinator's model version: one published
    :class:`~repro.serving.replica.ReplicationEvent` reaches *every*
    subscriber exactly once, in subscription order.  For in-memory
    shards an ``inject`` event advances the shard's staleness clock; for
    process-engine replicas the subscriber forwards the event into the
    worker (apply the injection + pre-warmed caches, or resync the whole
    model after a restore) and waits for the epoch acknowledgement.

    ``events``/``n_deliveries`` track *injection* fan-out so tests and
    reports can assert it; ``n_resyncs`` counts restore-driven resync
    broadcasts separately (episode control, not episode-observable
    traffic).
    """

    def __init__(self) -> None:
        # repro-lint: disable=RL004 -- subscriptions persist across episode resets by design
        self._subscribers: list[Callable[[ReplicationEvent], None]] = []
        self.events: list[int] = []  # user ids of published injections
        self.n_deliveries = 0
        self.n_resyncs = 0

    def subscribe(self, callback: Callable[[ReplicationEvent], None]) -> None:
        self._subscribers.append(callback)

    def publish(self, event: ReplicationEvent) -> None:
        if event.kind == "inject":
            self.events.append(int(event.user_id))
        elif event.kind == "inject_batch":
            self.events.extend(
                int(record.user_id) for record in (event.records or ())
            )
        else:
            self.n_resyncs += 1
        for callback in self._subscribers:
            callback(event)
            if event.kind == "inject":
                self.n_deliveries += 1
            elif event.kind == "inject_batch":
                self.n_deliveries += len(event.records or ())

    def reset(self) -> None:
        """Forget delivered history (episode boundary; subscriptions persist).

        Events published during a rolled-back episode describe injections
        that no longer exist, so fan-out reports must not count them.
        """
        self.events.clear()
        self.n_deliveries = 0
        self.n_resyncs = 0


class _WorkerShard:
    """One worker: its cache, its quota state, its serving counters.

    ``lock`` guards every mutable field; the engine worker resolving this
    shard's slice, bus-driven invalidations, and episode restores all
    hold it, so shard state is consistent under the threaded engine.

    Under the process engine this object is the coordinator-side
    **mirror** of a replica living in a worker process (``remote`` is
    set): the cache here holds no entries — the replica's counters are
    shipped back with every slice result and replication ack and folded
    in via :meth:`apply_snapshot`, so reporting reads one shape of shard
    regardless of engine.  The limiter is always coordinator-side and
    authoritative (admission happens before fan-out).
    """

    def __init__(
        self,
        index: int,
        config: ServingConfig,
        per_client_policies: dict,
        limiter_kwargs: dict,
        n_items: int | None = None,
    ) -> None:
        self.index = index
        self.lock = Lock()
        # repro-lint: disable=RL004 -- deployment topology, not episode state
        self.remote = False
        self.n_replica_entries = 0  # guarded-by: lock (replica cache size, remote mirrors only)
        self._snapshot_seq = -1  # guarded-by: lock (newest replica snapshot folded in)
        self.cache = (
            TopKCache(
                capacity=config.cache_capacity,
                ttl_injections=config.ttl_injections,
                n_items=n_items,
            )
            if config.cache_capacity > 0
            else None
        )
        self.limiter = RateLimiter(
            default_policy=config.default_policy,
            per_client=per_client_policies,
            **limiter_kwargs,
        )
        self.stats = ServiceStats()

    def note_injection(self) -> None:
        """Bus callback: advance this shard's staleness clock under lock."""
        with self.lock:
            if self.cache is not None:
                self.cache.note_injection()

    def apply_snapshot(self, snapshot: CacheSnapshot | None) -> None:
        """Fold a replica's reported cache counters into this mirror.

        Snapshots are absolute counter states, so the mirror only moves
        forward: concurrent client threads can complete their fan-outs in
        a different order than the worker served them, and an older
        snapshot arriving late must not roll the mirror back.
        """
        with self.lock:
            if self.cache is not None and snapshot is not None:
                if snapshot.seq <= self._snapshot_seq:
                    return
                self._snapshot_seq = snapshot.seq
                stats = self.cache.stats
                stats.hits = snapshot.hits
                stats.misses = snapshot.misses
                stats.evictions = snapshot.evictions
                stats.invalidations = snapshot.invalidations
                self.n_replica_entries = snapshot.n_entries

    def record_remote_slice(self, result: replica_proto.SliceResult, n_users: int) -> None:
        """Mirror one worker-resolved slice: request stats + cache counters."""
        with self.lock:
            self.stats.record_request(n_users, result.n_scored, result.elapsed)
        self.apply_snapshot(result.cache)

    def reset(self) -> None:
        """Return every counter and entry to the freshly-constructed state."""
        with self.lock:
            if self.cache is not None:
                self.cache.flush()
                self.cache.stats.reset()
            self.limiter.reset()
            self.stats.reset()
            self.n_replica_entries = 0
            # Without this, a mirror that saw snapshot seq N before the
            # reset would drop every post-reset snapshot up to seq N —
            # exactly the PR 8 restore-vs-fresh divergence class.
            self._snapshot_seq = -1

    @property
    def busy_s(self) -> float:
        """Total scoring/cache time this worker spent (simulated makespan input)."""
        return float(sum(self.stats.wall_times))

    def counters(self) -> dict[str, float]:
        """Monotonic counters; traffic replays diff these for per-run rows."""
        out = {
            "n_requests": float(self.stats.n_requests),
            "n_users_served": float(self.stats.n_users_served),
            "n_users_scored": float(self.stats.n_users_scored),
            "busy_s": self.busy_s,
        }
        if self.cache is not None:
            out["cache_hits"] = float(self.cache.stats.hits)
            out["cache_misses"] = float(self.cache.stats.misses)
        return out

    def summary(self) -> dict[str, float]:
        out = {"shard": float(self.index), **self.counters()}
        if self.cache is not None:
            with self.lock:
                entries = self.n_replica_entries if self.remote else len(self.cache)
            out["cache_entries"] = float(entries)
        return out


class ShardedRecommendationService(RecommendationService):
    """Coordinator + N worker shards with single-service semantics.

    Parameters
    ----------
    model:
        The fitted recommender every shard scores against (one model
        replica in this simulation; shards own *serving* state).
    n_shards:
        Number of worker shards (1 is legal and useful as the scaling
        baseline).
    config:
        The :class:`ServingConfig` posture, applied per shard: each shard
        gets its own cache of ``cache_capacity`` entries and its own
        limiter with the same policies.  Because a client's admissions all
        land on its home shard and a user's cache keys all land on its
        owning shard, behaviour matches one global cache/limiter
        (eviction order under capacity pressure is the one documented
        divergence — per-shard LRU is local).
    routing:
        ``"hash"`` (stable modulo hash) or ``"consistent"`` (ring with
        virtual nodes).
    engine:
        ``"serial"``, ``"threaded"``, ``"process"``, or an
        :class:`~repro.serving.engine.ExecutionEngine` instance;
        ``None`` (default) takes the mode from ``config.engine``.  Every
        engine produces element-wise identical results — engines change
        wall clock (and, for ``process``, where shard state physically
        lives), never output; the engine-conformance suite pins this.
    shard_latency_s:
        Modelled per-slice service latency of a remote shard worker (the
        RPC hop a coordinator pays per shard it contacts).  The threaded
        and process engines overlap these waits across shards, the async
        engine awaits them on its event loop (so waits also overlap
        *across requests* via :meth:`query_async`), and the serial
        engine pays them in sequence.  ``0`` (default) disables
        the model.  The latency is *excluded* from per-shard busy time,
        so simulated makespan numbers stay pure compute.
    """

    def __init__(
        self,
        model: Recommender,
        n_shards: int = 2,
        config: ServingConfig | None = None,
        detector: object | None = None,
        clock: Callable[[], float] = time.perf_counter,
        limiter_clock: Callable[[], float] | None = None,
        routing: str | ShardRouter = "hash",
        engine: str | ExecutionEngine | None = None,
        shard_latency_s: float = 0.0,
    ) -> None:
        super().__init__(
            model, config=config, detector=detector, clock=clock, limiter_clock=limiter_clock
        )
        # Note: the coordinator's own cache is disabled via _make_cache
        # (shards hold the caches); self.limiter stays as the policy
        # registry (policy_for), but admission always routes to the
        # client's home-shard limiter.
        if isinstance(routing, ShardRouter):
            if routing.n_shards != n_shards:
                raise ConfigurationError(
                    f"router is sized for {routing.n_shards} shards, service has {n_shards}"
                )
            self.router = routing
        elif routing == "hash":
            self.router = ShardRouter(n_shards)
        elif routing == "consistent":
            self.router = ConsistentHashRouter(n_shards)
        else:
            raise ConfigurationError(f"routing must be one of {_ROUTINGS} or a ShardRouter")
        if shard_latency_s < 0:
            raise ConfigurationError("shard_latency_s must be non-negative")
        self.n_shards = n_shards
        self.shard_latency_s = float(shard_latency_s)
        self._engine = make_engine(
            engine if engine is not None else self.config.engine, n_workers=n_shards
        )
        # Anything failing past this point (shard/engine mismatch, an
        # unpicklable model surfacing during replica installation) would
        # leak live worker pools — and, in sliced mode, shared-memory
        # segments: the caller never receives a service handle to close,
        # so release both before re-raising.
        self._shared_store: shared_state.SharedItemStore | None = None
        try:
            self._remote = not self._engine.shares_memory
            # Sliced replication: partition per-user state by shard and
            # share the item side through shared memory.  Only meaningful
            # when shards live in other processes; models without a
            # slicing implementation fall back to full replication.
            self._sliced = (
                self._remote
                and self.config.replication == "sliced"
                and model.supports_slicing
            )
            if self._remote and getattr(self._engine, "n_workers", n_shards) != n_shards:
                raise ConfigurationError(
                    f"process engine holds {self._engine.n_workers} shard replicas, "
                    f"service has {n_shards} shards"
                )
            # Model version: bumped by every injection and every restore.
            # Process-engine replicas acknowledge each epoch they apply,
            # and every query slice is checked against it
            # (StaleReplicaError on mismatch), so a lagging replica is
            # detectable, never silent.
            self._epoch = 0
            self._model_lock = ReadWriteLock()
            # Versioned rollout: the registry numbers candidate models
            # (monotonic within an episode) and _rollout holds the state
            # of the in-flight canary window, None outside one.  The
            # reference itself is only rebound under the model write
            # lock; query threads read it under the read side, and the
            # controller's own lock guards its counters (see
            # repro.serving.rollout) — so neither field carries a
            # guarded-by annotation of its own.
            self.versions = ModelVersionRegistry()
            self._rollout: RolloutController | None = None
            #: Most recent rollback of a staged version, as
            #: ``{"version", "reason", "auto"}`` — None when no rollback
            #: happened since construction / the last stage / restore.
            self.last_rollout_rollback: dict | None = None
            limiter_kwargs = {} if limiter_clock is None else {"clock": limiter_clock}
            per_client = dict(self.config.client_policies)
            per_client.setdefault("evaluator", UNLIMITED)
            self.bus = InvalidationBus()
            n_items = model.dataset.n_items
            self.shards = [
                _WorkerShard(i, self.config, per_client, limiter_kwargs, n_items=n_items)
                for i in range(n_shards)
            ]
            for shard in self.shards:
                shard.remote = self._remote
                self.bus.subscribe(partial(self._on_replication_event, shard))
            if self._remote:
                self._install_replicas()
        except Exception:
            self._engine.close()
            if self._shared_store is not None:
                self._shared_store.close()
            raise

    def _make_cache(self):
        return None  # per-shard caches only; see _WorkerShard

    # -- lifecycle -------------------------------------------------------------
    @property
    def engine_name(self) -> str:
        """Execution mode resolving per-shard slices (reporting helper)."""
        return self._engine.name

    @property
    def epoch(self) -> int:
        """Current model version (injections + restores since construction)."""
        return self._epoch

    def close(self) -> None:
        """Release engine workers and shared segments (idempotent)."""
        self._engine.close()
        if self._shared_store is not None:
            self._shared_store.close()

    # -- replication (process engine) -----------------------------------------
    def _install_replicas(self) -> None:
        """Serialize each shard's state into its worker at pool start.

        Full mode: the model is pickled once and shipped to every worker
        together with the serving config (from which the worker rebuilds
        its cache, limiter, and stats) — the shard state leaves the
        coordinator's address space here and is only ever touched through
        replication messages afterwards.  Lazy scoring caches are
        pre-warmed *before* serialization so the blob ships warm: no
        worker ever pays a cold rebuild on its first slice.

        Sliced mode (``config.replication == "sliced"`` and the model
        supports it): the item side is published once into shared-memory
        segments and each worker receives only its shard's user slice
        plus the segment handle — per-worker install payload and RSS are
        proportional to the shard's user count, not N full models.
        """
        if self._sliced:
            self._install_replicas_sliced()
            return
        self._model.prewarm()
        blob = pickle.dumps(self._model)
        futures = [
            self._engine.submit_to(
                shard.index,
                replica_proto.install_replica,
                shard.index,
                blob,
                self.config,
                self._epoch,
                self.shard_latency_s,
            )
            for shard in self.shards
        ]
        for shard, ack in zip(self.shards, self._engine.gather(futures)):
            self._verify_replica(ack.epoch, ack.model_n_users, shard.index)

    def _shard_user_ids(self) -> list[np.ndarray]:
        """Partition every current user id by owning shard (router-driven)."""
        users = np.arange(self._model.dataset.n_users, dtype=np.int64)
        if self.n_shards == 1 or users.size == 0:
            return [users] + [users[:0]] * (self.n_shards - 1)
        shards = self.router.shards_for_users(users)
        return [users[shards == index] for index in range(self.n_shards)]

    def _install_replicas_sliced(self) -> None:
        self._shared_store = shared_state.SharedItemStore(self._model.shared_item_state())
        handle = self._shared_store.handle()
        n_users_global = self._model.dataset.n_users
        futures = [
            self._engine.submit_to(
                shard.index,
                replica_proto.install_replica_sliced,
                shard.index,
                pickle.dumps(self._model.slice_users(user_ids)),
                user_ids,
                handle,
                self.config,
                self._epoch,
                self.shard_latency_s,
                n_users_global,
            )
            for shard, user_ids in zip(self.shards, self._shard_user_ids())
        ]
        for shard, ack in zip(self.shards, self._engine.gather(futures)):
            self._verify_replica(ack.epoch, ack.model_n_users, shard.index)

    def _verify_replica(self, epoch: int, model_n_users: int, shard_index: int) -> None:
        """Cross-check a replica's reported version against the coordinator."""
        if epoch != self._epoch or model_n_users != self._model.dataset.n_users:
            raise StaleReplicaError(
                f"shard {shard_index} replica reports epoch {epoch} / "
                f"{model_n_users} users; coordinator is at epoch {self._epoch} / "
                f"{self._model.dataset.n_users} users"
            )

    def _on_replication_event(self, shard: _WorkerShard, event: ReplicationEvent) -> None:
        """Bus subscriber: advance one mirror's staleness clock."""
        if event.kind == "inject":
            shard.note_injection()
        elif event.kind == "inject_batch":
            for _ in event.records or ():
                shard.note_injection()

    def _replicate(self, event: ReplicationEvent) -> None:
        """Broadcast one state change: bus first, then all workers at once.

        The bus fan-out ticks every coordinator-side mirror (and records
        the event for observability); under the process engine the event
        is then submitted to *every* worker before any acknowledgement
        is awaited, so an injection pays one parallel round trip instead
        of ``n_shards`` sequential ones while holding the write lock.
        Acks are verified in shard order after the gather.
        """
        self.bus.publish(event)
        if self._remote:
            futures = [
                self._engine.submit_to(shard.index, replica_proto.apply_event, event)
                for shard in self.shards
            ]
            for shard, ack in zip(self.shards, self._engine.gather(futures)):
                self._verify_replica(ack.epoch, ack.model_n_users, shard.index)
                shard.apply_snapshot(ack.cache)

    def replica_probe(self) -> list[dict]:
        """Diagnostic view of every worker replica (process engine only)."""
        if not self._remote:
            raise ConfigurationError("replica_probe requires the process engine")
        return self._engine.broadcast(replica_proto.probe_replica)

    def __enter__(self) -> "ShardedRecommendationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- routing helpers ------------------------------------------------------
    def _limiter_for_client(self, client: str) -> RateLimiter:
        return self.shards[self.router.shard_for_client(client)].limiter

    def shard_of(self, user_id: int) -> int:
        """Which worker owns this user's cache keys (test/report helper)."""
        return self.router.shard_for_user(user_id)

    # -- query path -----------------------------------------------------------
    def query(
        self,
        user_ids: Sequence[int],
        k: int,
        exclude_seen: bool = True,
        client: str = "default",
        use_cache: bool = True,
    ) -> list[np.ndarray]:
        """Fan one batched request out to the owning shards and merge.

        Admission happens once, on the client's home shard, exactly as a
        global limiter would count it.  Each shard then resolves its slice
        of the request against its own cache and folds the misses into
        one ``top_k_batch`` call — sequentially or concurrently depending
        on the configured engine — and merged results come back in
        request order.  Identical inputs produce element-wise identical
        lists to the single service under every engine (``top_k_batch``
        is per-user independent, and per-shard state is confined to the
        worker resolving the shard — lock-guarded in-process, or a
        replica in its own process).
        """
        if k <= 0:
            raise ConfigurationError("k must be positive")
        start = self._clock()
        users = np.asarray(user_ids, dtype=np.int64)
        n_users = int(users.size)
        profiler = self.profiler
        order, slices = self._route_request(users, n_users, profiler)
        # Queries share the model for reading; injections/restores write.
        # Admission and the coordinator's stats record both stay inside
        # the read hold: a concurrent restore (write side) must not land
        # between a request's quota admission and its execution, nor
        # between its resolution and its accounting — either way a
        # "freshly reset" platform would carry traces of (or grant free
        # quota to) a pre-reset request.  The limiter's internal lock is
        # a leaf below the model lock on every path, so ordering is safe.
        with self._model_lock.read():
            self._admit_query(client, n_users, profiler)
            if self._remote:
                outcomes = self._resolve_remote(slices, k, exclude_seen, use_cache)
            else:
                outcomes = self._engine.run(
                    self._slice_tasks(slices, k, exclude_seen, use_cache),
                    latency_s=self.shard_latency_s,
                )
            results = self._merge_outcomes(order, outcomes, n_users, profiler, start)
        # Outside the read hold: acting on a rollout verdict needs the
        # write lock, and a reader can never upgrade to it.
        self._maybe_auto_rollback()
        return results

    async def query_async(
        self,
        user_ids: Sequence[int],
        k: int,
        exclude_seen: bool = True,
        client: str = "default",
        use_cache: bool = True,
    ) -> list[np.ndarray]:
        """Coroutine twin of :meth:`query` for the asyncio serving front.

        Requires an engine exposing ``run_async`` (the async engine):
        per-shard slices resolve as coroutines on the *caller's* event
        loop, with the modelled RPC latency awaited rather than slept —
        so a front holding many requests in flight overlaps their waits.

        Identical semantics to :meth:`query` otherwise, including the
        read-lock hold around admission/execution/accounting.  The lock
        acquisition is loop-safe: the non-blocking fast path covers the
        overwhelmingly common no-writer case, and when a writer is
        active or pending the *blocking* wait moves to an executor
        thread — a coroutine must never park the loop thread in
        ``Condition.wait`` while another coroutine (holding the read
        side, awaiting its RPC) needs the loop to resume and release.
        """
        run_async = getattr(self._engine, "run_async", None)
        if run_async is None:
            raise ConfigurationError(
                f"query_async requires an engine with run_async "
                f"(the async engine); this service runs {self._engine.name!r}"
            )
        if k <= 0:
            raise ConfigurationError("k must be positive")
        start = self._clock()
        users = np.asarray(user_ids, dtype=np.int64)
        n_users = int(users.size)
        profiler = self.profiler
        order, slices = self._route_request(users, n_users, profiler)
        if not self._model_lock.try_acquire_read():
            await asyncio.get_running_loop().run_in_executor(
                None, self._model_lock.acquire_read
            )
        try:
            self._admit_query(client, n_users, profiler)
            outcomes = await run_async(
                self._slice_tasks(slices, k, exclude_seen, use_cache),
                latency_s=self.shard_latency_s,
            )
            results = self._merge_outcomes(order, outcomes, n_users, profiler, start)
        finally:
            self._model_lock.release_read()
        rollout = self._rollout
        if rollout is not None and rollout.verdict() is not None:
            # The rollback blocks on the model write lock; never park the
            # event loop in it while other coroutines hold the read side.
            await asyncio.get_running_loop().run_in_executor(
                None, self._maybe_auto_rollback
            )
        return results

    def _route_request(self, users: np.ndarray, n_users: int, profiler):
        """Routing: one vectorised hash pass + stable argsort grouping.

        Single-shard deployments skip the router — everything is one
        slice in request order, and the merge scatter is skipped too.
        """
        t0 = time.perf_counter() if profiler is not None else 0.0
        if n_users == 0:
            order, slices = np.empty(0, dtype=np.int64), []
        elif self.n_shards == 1:
            order, slices = None, [(0, None, users)]
        else:
            order, slices = group_by_shard(self.router, users)
        if profiler is not None:
            profiler.add("routing", time.perf_counter() - t0, n_users)
        return order, slices

    def _admit_query(self, client: str, n_users: int, profiler) -> None:
        """Home-shard admission; quota denials are counted by cause."""
        t0 = time.perf_counter() if profiler is not None else 0.0
        try:
            self._limiter_for_client(client).admit_query(client, n_users)
        except RateLimitExceededError:
            self.stats.record_rate_limited()
            raise
        if profiler is not None:
            profiler.add("admission", time.perf_counter() - t0, n_users)

    def _slice_tasks(
        self, slices, k: int, exclude_seen: bool, use_cache: bool
    ) -> list[Callable[[], tuple[int, list[np.ndarray]]]]:
        rollout = self._rollout  # stable for the read hold (rebinding needs the write lock)
        if rollout is not None:
            return [
                partial(
                    self._resolve_shard_rollout,
                    rollout,
                    shard_index,
                    slice_users,
                    k,
                    exclude_seen,
                    use_cache,
                )
                for shard_index, _, slice_users in slices
            ]
        return [
            partial(
                self._resolve_shard,
                self.shards[shard_index],
                slice_users,
                k,
                exclude_seen,
                use_cache,
            )
            for shard_index, _, slice_users in slices
        ]

    def _merge_outcomes(
        self, order, outcomes, n_users: int, profiler, start: float
    ) -> list[np.ndarray]:
        """Scatter slice results back to request order; record the request."""
        n_scored_total = sum(n_scored for n_scored, _ in outcomes)
        t0 = time.perf_counter() if profiler is not None else 0.0
        if not outcomes:
            results: list[np.ndarray] = []
        elif len(outcomes) == 1:
            # One slice ⇒ its users kept request order (stable sort).
            results = list(outcomes[0][1])
        else:
            results = scatter_to_request_order(
                order, [shard_results for _, shard_results in outcomes]
            )
        if profiler is not None:
            profiler.add("merge", time.perf_counter() - t0, n_users)
        self.stats.record_request(n_users, n_scored_total, self._clock() - start)
        return results

    def _resolve_remote(
        self,
        slices: list[tuple[int, np.ndarray | None, np.ndarray]],
        k: int,
        exclude_seen: bool,
        use_cache: bool,
    ) -> list[tuple[int, list[np.ndarray]]]:
        """Fan slices out to the worker replicas and mirror their counters.

        Every slice message carries the coordinator's current epoch; a
        replica that is not exactly at that version raises
        :class:`~repro.errors.StaleReplicaError` rather than serving a
        stale model, and the coordinator re-checks the epoch and user
        count echoed in each result.  Per-shard stats and cache counters
        accrue in the worker and are folded into the coordinator-side
        mirrors here, so reports are engine-independent.
        """
        futures = [
            self._engine.submit_to(
                shard_index,
                replica_proto.query_slice,
                self._epoch,
                slice_users,
                k,
                exclude_seen,
                use_cache,
            )
            for shard_index, _, slice_users in slices
        ]
        outcomes: list[tuple[int, list[np.ndarray]]] = []
        rollout = self._rollout  # stable for the read hold (rebinding needs the write lock)
        for (shard_index, _, slice_users), result in zip(slices, self._engine.gather(futures)):
            self._verify_replica(result.epoch, result.model_n_users, shard_index)
            if rollout is not None and result.canary_users:
                # Clean canary slice: the replica served the staged model
                # side-effect-free (no stats recorded, no cache touched),
                # so mirror only its unchanged cache view — recording the
                # request here would make rollback observable.
                self.shards[shard_index].apply_snapshot(result.cache)
                rollout.note_canary(result.canary_users, result.elapsed)
                self.stats.record_canary(result.canary_users)
            else:
                self.shards[shard_index].record_remote_slice(result, len(slice_users))
                if rollout is not None:
                    if result.rollout_error is not None:
                        rollout.fail(f"shard {shard_index}: {result.rollout_error}")
                    elif result.shadow_users:
                        rollout.note_shadow(result.shadow_users, result.shadow_agree)
                        self.stats.record_shadow(result.shadow_users, result.shadow_agree)
            outcomes.append((result.n_scored, result.results))
        return outcomes

    def _resolve_shard(
        self,
        shard: _WorkerShard,
        shard_users: np.ndarray,
        k: int,
        exclude_seen: bool,
        use_cache: bool,
    ) -> tuple[int, list[np.ndarray]]:
        """Resolve one shard's slice (runs on the engine's worker thread).

        The modelled worker RPC latency is paid by the *engine* (see
        ``ExecutionEngine.run(tasks, latency_s=...)``) before this task
        body runs — slept per worker thread, awaited on the event loop,
        or slept in sequence by the serial engine — and the busy clock
        starts only after the shard lock is held: ``busy_s`` stays pure
        compute — neither the modelled wait nor lock contention from
        concurrent clients counts as shard work — so the simulated
        makespan model is unchanged, while measured wall clock feels
        both.
        """
        with shard.lock:
            t0 = self._clock()
            n_scored, shard_results = replica_proto.resolve_slice(
                self._model,
                shard.cache,
                shard_users,
                k,
                exclude_seen,
                use_cache,
                profiler=self.profiler,
            )
            shard.stats.record_request(len(shard_users), n_scored, self._clock() - t0)
        return n_scored, shard_results

    def _resolve_shard_rollout(
        self,
        rollout: RolloutController,
        shard_index: int,
        shard_users: np.ndarray,
        k: int,
        exclude_seen: bool,
        use_cache: bool,
    ) -> tuple[int, list[np.ndarray]]:
        """In-memory slice resolution while a version is staged.

        The canary shard serves the *staged* model side-effect-free — no
        shard cache, no shard stats — so a rollback leaves the shard's
        durable state exactly as if the window never opened; a staged
        model that raises marks the window failed and the slice degrades
        to the active model through the normal path (that traffic is real
        served traffic and is accounted as such).  Shadow shards serve
        the active model normally, then score the staged model on the
        side and fold exact top-k agreement into the window's counters.
        """
        shard = self.shards[shard_index]
        if shard_index == rollout.canary_shard:
            t0 = time.perf_counter()
            try:
                n_scored, shard_results = replica_proto.resolve_slice(
                    rollout.staged_model, None, shard_users, k, exclude_seen, False
                )
            except Exception as exc:  # noqa: BLE001 - any staged-model fault rolls back
                rollout.fail(
                    f"canary shard {shard_index} raised {type(exc).__name__}: {exc}"
                )
            else:
                rollout.note_canary(len(shard_users), time.perf_counter() - t0)
                self.stats.record_canary(len(shard_users))
                return n_scored, shard_results
            return self._resolve_shard(shard, shard_users, k, exclude_seen, use_cache)
        n_scored, shard_results = self._resolve_shard(
            shard, shard_users, k, exclude_seen, use_cache
        )
        try:
            _, staged_lists = replica_proto.resolve_slice(
                rollout.staged_model, None, shard_users, k, exclude_seen, False
            )
        except Exception as exc:  # noqa: BLE001 - any staged-model fault rolls back
            rollout.fail(
                f"shadow scoring on shard {shard_index} raised {type(exc).__name__}: {exc}"
            )
        else:
            n_agree = sum(
                int(np.array_equal(served, staged))
                for served, staged in zip(shard_results, staged_lists)
            )
            rollout.note_shadow(len(shard_users), n_agree)
            self.stats.record_shadow(len(shard_users), n_agree)
        return n_scored, shard_results

    # -- injection pipeline hooks --------------------------------------------
    def inject(self, profile: Sequence[int], client: str = "default") -> int:
        """Register a profile; exclusive with in-flight queries.

        The write lock drains concurrent readers before the model
        mutates, so a shard worker never scores against a half-applied
        injection; the bus then advances every shard's staleness clock
        before the next query can start.
        """
        with self._model_lock.write():
            self._check_no_rollout("inject")
            return super().inject(profile, client=client)

    def inject_batch(self, profiles: Sequence[Sequence[int]], client: str = "default") -> list[int]:
        """Register a burst of profiles with one replication round trip.

        Under sliced replication the whole burst is admitted, screened,
        and folded into the coordinator's model under a single write-lock
        hold, then crosses the process boundary as **one**
        ``inject_batch`` event per shard instead of one event per
        profile.  A mid-batch denial (quota or detector block) still
        replicates the successfully admitted prefix — the coordinator's
        model already holds those users — before the error propagates.

        Full-replication deployments fall back to the per-profile loop
        (each injection replicates its own pre-warm payload, which the
        batched event cannot coalesce without changing lockstep
        semantics).
        """
        if not self._sliced:
            return super().inject_batch(profiles, client=client)
        with self._model_lock.write():
            self._check_no_rollout("inject_batch")
            assigned: list[int] = []
            try:
                for profile in profiles:
                    try:
                        self._admit_injection(client)
                    except RateLimitExceededError:
                        self.stats.record_rate_limited()
                        raise
                    flagged_score = self._screen_profile(profile)
                    user_id = self._model.add_user(profile)
                    if flagged_score is not None:
                        self.flagged_injections.append((user_id, flagged_score))
                    self.stats.n_injections += 1
                    self._epoch += 1
                    assigned.append(int(user_id))
            finally:
                if assigned:
                    self._replicate_injections(assigned)
            return assigned

    def _admit_injection(self, client: str) -> None:
        self._limiter_for_client(client).admit_injection(client)

    def _invalidate_after_injection(self, user_id: int) -> None:
        """Advance the epoch, pre-warm once if needed, and replicate.

        When the engine resolves slices concurrently, the coordinator
        rebuilds every lazy scoring cache the injection invalidated
        (:meth:`~repro.recsys.base.Recommender.prewarm`) *before*
        fan-out — still inside the write lock — so engine workers never
        race two duplicate rebuilds on their first post-injection
        slices, and process replicas install the shipped state instead
        of performing N rebuilds.  Under the serial engine the rebuild
        stays lazy (the historical cost profile: an injection burst with
        no interleaved query pays one rebuild at the next query, not
        one per injection).

        Sliced replication replaces the pre-warm shipment entirely: the
        coordinator republishes dirty shared item state in place (one
        shared copy, no per-shard payload) and replicates a one-record
        batch event carrying only the profile and per-user state.
        """
        self._epoch += 1
        if self._sliced:
            self._replicate_injections([int(user_id)])
            return
        prewarm = None
        if self._engine.concurrent:
            state = self._model.prewarm()
            if self._remote:
                prewarm = state
        profile = tuple(int(v) for v in self._model.dataset.user_profile(int(user_id)))
        self._replicate(
            ReplicationEvent(
                kind="inject",
                epoch=self._epoch,
                user_id=int(user_id),
                profile=profile,
                prewarm=prewarm,
            )
        )

    def _replicate_injections(self, user_ids: list[int]) -> None:
        """Sliced-mode replication of one injection burst (epoch already bumped).

        Dirty shared state (ItemKNN's similarity matrix, popularity
        counts) is rebuilt once by the coordinator and republished into
        the live segments — safe because the write lock has drained
        every reader — then a single batched event fans out.
        """
        if not self._model.shared_static_under_injection:
            self._shared_store.publish(self._model.shared_item_state())
        records = tuple(
            InjectionRecord(
                user_id=user_id,
                profile=tuple(
                    int(v) for v in self._model.dataset.user_profile(user_id)
                ),
                owner_shard=int(self.router.shard_for_user(user_id)),
                user_state=self._model.user_state(user_id),
            )
            for user_id in user_ids
        )
        self._replicate(
            ReplicationEvent(kind="inject_batch", epoch=self._epoch, records=records)
        )

    # -- episode management ---------------------------------------------------
    def snapshot(self):
        """Capture model state atomically with respect to injections.

        The read side suffices: snapshots only read the model, so they
        may overlap in-flight queries, but a concurrent ``inject`` (write
        side) must fully land or not have started — otherwise the
        captured user count and model state could tear apart and fail the
        restore-time consistency check.
        """
        with self._model_lock.read():
            return super().snapshot()

    def restore(self, snapshot) -> None:
        """Roll back the model, then reset every shard to a clean episode.

        Beyond the base-service reset (coordinator stats, flagged
        injections), every per-shard cache is flushed *and* its counters
        zeroed, per-shard limiter windows and denial counts clear, every
        shard's request stats (the makespan/speedup inputs) zero, and the
        invalidation bus forgets its delivered history — so no report can
        double-count work from before the reset.

        Under the process engine the rollback must also cross the
        process boundary: the restore bumps the epoch and publishes a
        ``resync`` replication event carrying the rolled-back model, so
        every worker replaces its replica wholesale and acknowledges the
        new version before the next query can start.  The bus history is
        cleared *after* the resync broadcast — episode control leaves no
        trace, exactly like the in-memory reset.
        """
        with self._model_lock.write():
            self._check_no_rollout("restore")
            super().restore(snapshot)
            self.versions.reset()
            self.last_rollout_rollback = None
            self._reset_serving_state()

    def _reset_serving_state(self) -> None:
        """Reset every shard to a clean slate serving the coordinator's model.

        Shared by episode :meth:`restore` (the model just rolled back)
        and :meth:`promote_rollout` (the model just moved forward):
        either way the fleet must be indistinguishable from one freshly
        constructed around ``self._model`` — shard caches flushed and
        counters zeroed, limiter windows clear, shard stats zero, the
        epoch advanced, replicas resynced wholesale, and the bus history
        forgotten.  Caller holds the model write lock.
        """
        for shard in self.shards:
            shard.reset()
        self._epoch += 1
        if self._sliced:
            self._resync_sliced()
        elif self._remote:
            # Ship the model warm (a rollback drops lazy caches, a
            # promote may stage them cold), so no replica pays a rebuild.
            self._model.prewarm()
            self._replicate(
                ReplicationEvent(
                    kind="resync",
                    epoch=self._epoch,
                    model_blob=pickle.dumps(self._model),
                )
            )
        self.bus.reset()

    def _resync_sliced(self) -> None:
        """Sliced-mode episode resync: republish items, reship user slices.

        *All* shared item state is republished (not just injection-dirty
        arrays): the rollback replaced model arrays wholesale and
        invalidated parameter-derived caches (NeuralCF's fused tensor),
        so the segments must be rebuilt from the restored model.  Each
        worker then receives only its shard's rolled-back user slice —
        the resync payload is independent of catalog size, unlike the
        full-mode whole-model pickle.
        """
        self._shared_store.publish(self._model.shared_item_state())
        self.bus.publish(ReplicationEvent(kind="resync", epoch=self._epoch))
        n_users_global = self._model.dataset.n_users
        futures = [
            self._engine.submit_to(
                shard.index,
                replica_proto.resync_sliced,
                self._epoch,
                pickle.dumps(self._model.slice_users(user_ids)),
                user_ids,
                n_users_global,
            )
            for shard, user_ids in zip(self.shards, self._shard_user_ids())
        ]
        for shard, ack in zip(self.shards, self._engine.gather(futures)):
            self._verify_replica(ack.epoch, ack.model_n_users, shard.index)
            shard.apply_snapshot(ack.cache)

    # -- versioned rollout -----------------------------------------------------
    def _check_no_rollout(self, operation: str) -> None:
        """Model mutations are exclusive with an active canary window.

        An injection or restore landing mid-window would fork the fleet:
        the active model moves while the staged candidate (trained
        against the pre-mutation state) does not, so neither promote nor
        rollback could restore a consistent fleet.  Callers hold the
        model write lock.
        """
        if self._rollout is not None:
            raise RolloutError(
                f"{operation} is not allowed while version "
                f"{self._rollout.version} is in a canary window; promote or "
                "roll back the rollout first"
            )

    @property
    def rollout_active(self) -> bool:
        return self._rollout is not None

    @property
    def active_version(self) -> int:
        """The fleet-wide serving-model version number."""
        return self.versions.active

    def rollout_status(self) -> dict | None:
        """Live view of the in-flight canary window (None outside one)."""
        rollout = self._rollout
        if rollout is None:
            return None
        return {
            "version": rollout.version,
            "canary_shard": rollout.canary_shard,
            "agreement": rollout.agreement(),
            "verdict": rollout.verdict(),
            **rollout.counters(),
        }

    def stage_rollout(
        self,
        model: "Recommender",
        canary_shard: int = 0,
        guard: RolloutGuard | None = None,
    ) -> int:
        """Open a canary window serving candidate ``model`` on one shard.

        The candidate must be fitted over the *same* user and item
        universe as the serving model — routing is id-driven and must be
        identical across versions (online retraining via ``partial_fit``
        preserves this by construction: it never adds or removes users).
        Staging leaves every piece of durable fleet state untouched and
        does not advance the epoch; under the process engine the
        candidate ships to every replica as a transient full pickle (it
        never enters shared memory, so an abandoned window can never
        leak a segment).  Returns the staged version number.
        """
        with self._model_lock.write():
            self._check_no_rollout("stage_rollout")
            if not model.is_fitted:
                raise RolloutError("stage_rollout requires a fitted candidate model")
            if model.dataset.n_users != self._model.dataset.n_users:
                raise RolloutError(
                    f"candidate model has {model.dataset.n_users} users, the fleet "
                    f"serves {self._model.dataset.n_users}; user routing must be "
                    "identical across versions"
                )
            if model.dataset.n_items != self._model.dataset.n_items:
                raise RolloutError(
                    f"candidate model has {model.dataset.n_items} items, the fleet "
                    f"serves {self._model.dataset.n_items}"
                )
            if not 0 <= canary_shard < self.n_shards:
                raise RolloutError(
                    f"canary shard {canary_shard} outside fleet of {self.n_shards} shards"
                )
            guard = guard if guard is not None else RolloutGuard()
            model.prewarm()
            version = self.versions.stage()
            try:
                if self._remote:
                    blob = pickle.dumps(model)
                    futures = [
                        self._engine.submit_to(
                            shard.index,
                            replica_proto.stage_rollout_replica,
                            blob,
                            "canary" if shard.index == canary_shard else "shadow",
                            self._epoch,
                        )
                        for shard in self.shards
                    ]
                    for shard, ack in zip(self.shards, self._engine.gather(futures)):
                        self._verify_replica(ack.epoch, ack.model_n_users, shard.index)
            except Exception:
                # Leave no half-staged fleet behind: burn the version and
                # drop whatever replicas did stage before re-raising.
                self.versions.abandon(self._model.dataset.n_users)
                if self._remote:
                    self._engine.broadcast(replica_proto.unstage_rollout_replica)
                raise
            self._rollout = RolloutController(
                version=version,
                staged_model=model,
                canary_shard=canary_shard,
                guard=guard,
            )
            self.last_rollout_rollback = None
            return version

    def promote_rollout(self) -> int:
        """Close the window in the candidate's favour: it becomes *the* model.

        The staged model replaces the serving model and the whole fleet
        resets around it exactly as :meth:`restore` resets around a
        rolled-back model — caches, limiters, stats, bus history, and
        replica state all return to the freshly-deployed baseline, so a
        promoted fleet is indistinguishable from one constructed fresh
        on the candidate (the rollout-conformance suite pins this).
        Returns the now-active version number.
        """
        with self._model_lock.write():
            rollout = self._rollout
            if rollout is None:
                raise RolloutError("promote_rollout with no rollout in flight")
            if self._sliced and type(rollout.staged_model) is not type(self._model):
                # Any model may *canary* (it ships as a transient full
                # pickle), but promotion under sliced replication
                # republishes item state into the serving model's
                # existing segments, which a foreign class cannot fill.
                raise RolloutError(
                    "sliced replication publishes promoted item state into the "
                    f"serving model's segments; candidate must be a "
                    f"{type(self._model).__name__} to promote, got "
                    f"{type(rollout.staged_model).__name__} — roll back instead"
                )
            self._model = rollout.staged_model
            version = self.versions.promote(self._model.dataset.n_users)
            self._rollout = None
            # Base-service serving reset (the coordinator keeps no cache
            # of its own in the sharded deployment), then the shared
            # shard/replica reset machinery.
            self.limiter.reset()
            self.stats.reset()
            self.flagged_injections.clear()
            self._reset_serving_state()
            return version

    def rollback_rollout(self, reason: str = "manual") -> int:
        """Close the window against the candidate: the active model stands.

        Durable fleet state was never touched by the window (canary and
        shadow scoring are side-effect-free), so dropping the staged
        model and zeroing the window's counters restores the exact
        pre-stage fleet.  Returns the burned version number.
        """
        with self._model_lock.write():
            return self._rollback_locked(reason, auto=False)

    def _rollback_locked(self, reason: str, auto: bool) -> int:
        rollout = self._rollout
        if rollout is None:
            raise RolloutError("rollback_rollout with no rollout in flight")
        version = self.versions.abandon(self._model.dataset.n_users)
        self._rollout = None
        if self._remote:
            futures = [
                self._engine.submit_to(
                    shard.index, replica_proto.unstage_rollout_replica
                )
                for shard in self.shards
            ]
            for shard, ack in zip(self.shards, self._engine.gather(futures)):
                self._verify_replica(ack.epoch, ack.model_n_users, shard.index)
        self.stats.clear_rollout_counters()
        self.last_rollout_rollback = {"version": version, "reason": reason, "auto": auto}
        return version

    def _maybe_auto_rollback(self) -> None:
        """Act on a window verdict (guard breach or canary fault), if any.

        Runs after every query, *outside* the read hold.  The verdict is
        read lock-free; the rollback itself re-checks under the write
        lock that the same window is still open (another thread may have
        resolved it first), so double rollbacks cannot happen.
        """
        rollout = self._rollout
        if rollout is None:
            return
        reason = rollout.verdict()
        if reason is None:
            return
        with self._model_lock.write():
            current = self._rollout
            if current is None or current.version != rollout.version:
                return
            self._rollback_locked(reason, auto=True)

    # -- reporting -------------------------------------------------------------
    def cache_stats(self) -> CacheStats | None:
        """Summed per-shard cache counters (None when caching is off)."""
        if self.config.cache_capacity <= 0:
            return None
        total = CacheStats()
        for shard in self.shards:
            total.hits += shard.cache.stats.hits
            total.misses += shard.cache.stats.misses
            total.evictions += shard.cache.stats.evictions
            total.invalidations += shard.cache.stats.invalidations
        return total

    def shard_summaries(self) -> list[dict[str, float]]:
        return [shard.summary() for shard in self.shards]

    def makespan_s(self) -> float:
        """Simulated parallel wall time: the busiest worker's total busy time."""
        return max((shard.busy_s for shard in self.shards), default=0.0)

    def total_busy_s(self) -> float:
        return float(sum(shard.busy_s for shard in self.shards))

    def simulated_speedup(self) -> float:
        """Parallel speedup of the replay: total busy time / makespan."""
        makespan = self.makespan_s()
        return self.total_busy_s() / makespan if makespan > 0 else 1.0

    def load_balance(self) -> dict[str, float]:
        """How evenly routing spread the served users across workers."""
        served = np.array([shard.stats.n_users_served for shard in self.shards], dtype=np.float64)
        mean = float(served.mean()) if served.size else 0.0
        return {
            "n_shards": float(self.n_shards),
            "mean_users_per_shard": mean,
            "max_users_per_shard": float(served.max()) if served.size else 0.0,
            "imbalance": float(served.max() / mean) if mean > 0 else 1.0,
        }
