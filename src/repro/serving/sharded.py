"""Sharded multi-worker deployment of the recommendation service.

A production platform at the ROADMAP's target scale does not serve every
user from one process: the user base is partitioned across worker shards,
each holding its own result cache and quota state, with a thin
coordinator that fans batched queries out and merges the results.  This
module models that deployment while **pinning its externally observable
behaviour to the single-service semantics** of
:class:`~repro.serving.service.RecommendationService` (the parity test
harness in ``tests/test_serving_sharded_parity.py`` enforces element-wise
identical top-k lists):

* **routing** — users map to shards by stable hash
  (:class:`ShardRouter`) or over a consistent-hash ring
  (:class:`ConsistentHashRouter`, which moves only ~1/n of the keys when
  a shard is added).  A client's quota state lives on one home shard, so
  per-shard rate limiting is observationally identical to a global
  limiter.
* **per-shard caches** — each shard owns an LRU
  :class:`~repro.serving.cache.TopKCache`.  Because duplicate users in a
  request always route to the same shard, per-request dedup/batching
  matches the single service exactly.
* **invalidation bus** — every injection is published on an
  :class:`InvalidationBus` that all shards subscribe to, so strict mode
  never serves a stale list from *any* shard and TTL mode advances every
  shard's staleness clock in lockstep (identical to the single cache's
  version counter).

Per-shard busy time is accumulated on every request, which lets traffic
reports compute the *simulated multi-worker makespan*: shards are
independent workers, so a replay's parallel wall time is the maximum
per-shard busy time rather than the sum.  The shard-scaling benchmark
(``repro-bench serve --shards``) reports throughput on that model.
"""

from __future__ import annotations

import bisect
import time
import zlib
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.serving.cache import CacheStats, TopKCache
from repro.serving.rate_limit import UNLIMITED, RateLimiter
from repro.serving.service import RecommendationService, ServiceStats, ServingConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recsys.base import Recommender

__all__ = [
    "ShardRouter",
    "ConsistentHashRouter",
    "InvalidationBus",
    "ShardedRecommendationService",
]

_ROUTINGS = ("hash", "consistent")


def _stable_hash(key: str | int) -> int:
    """Process-stable 32-bit hash (Python's ``hash`` is salted per run)."""
    data = key.to_bytes(8, "little", signed=True) if isinstance(key, int) else key.encode()
    return zlib.crc32(data)


class ShardRouter:
    """Stable modulo-hash routing of users and clients to shards."""

    def __init__(self, n_shards: int) -> None:
        if n_shards <= 0:
            raise ConfigurationError("n_shards must be positive")
        self.n_shards = n_shards

    def shard_for_user(self, user_id: int) -> int:
        return _stable_hash(int(user_id)) % self.n_shards

    def shard_for_client(self, client: str) -> int:
        """Home shard holding the client's rate-limiter state."""
        return _stable_hash(client) % self.n_shards


class ConsistentHashRouter(ShardRouter):
    """Consistent-hash ring with virtual nodes.

    Keys map to the first ring point clockwise of their hash.  Adding a
    shard re-routes only the keys that fall into the new shard's arcs
    (~1/n of the space), where modulo routing would remap almost all of
    them — the property that makes cache warm-up survive resharding.
    """

    def __init__(self, n_shards: int, n_replicas: int = 64) -> None:
        super().__init__(n_shards)
        if n_replicas <= 0:
            raise ConfigurationError("n_replicas must be positive")
        self.n_replicas = n_replicas
        points = [
            (_stable_hash(f"shard-{shard}#vnode-{replica}"), shard)
            for shard in range(n_shards)
            for replica in range(n_replicas)
        ]
        points.sort()
        self._ring_hashes = [h for h, _ in points]
        self._ring_shards = [s for _, s in points]

    def _locate(self, hashed: int) -> int:
        index = bisect.bisect_right(self._ring_hashes, hashed)
        if index == len(self._ring_hashes):
            index = 0  # wrap around the ring
        return self._ring_shards[index]

    def shard_for_user(self, user_id: int) -> int:
        return self._locate(_stable_hash(int(user_id)))

    def shard_for_client(self, client: str) -> int:
        return self._locate(_stable_hash(client))


class InvalidationBus:
    """Broadcasts injection events to every subscribed shard.

    The bus is the mechanism that keeps per-shard staleness clocks in
    lockstep with the single-cache version counter: one published event
    reaches *every* subscriber exactly once, in subscription order.
    ``events``/``n_deliveries`` exist so tests can assert the fan-out.
    """

    def __init__(self) -> None:
        self._subscribers: list[Callable[[int], None]] = []
        self.events: list[int] = []  # user ids of published injections
        self.n_deliveries = 0

    def subscribe(self, callback: Callable[[int], None]) -> None:
        self._subscribers.append(callback)

    def publish(self, user_id: int) -> None:
        self.events.append(int(user_id))
        for callback in self._subscribers:
            callback(int(user_id))
            self.n_deliveries += 1


class _WorkerShard:
    """One worker: its cache, its quota state, its serving counters."""

    def __init__(
        self,
        index: int,
        config: ServingConfig,
        per_client_policies: dict,
        limiter_kwargs: dict,
    ) -> None:
        self.index = index
        self.cache = (
            TopKCache(capacity=config.cache_capacity, ttl_injections=config.ttl_injections)
            if config.cache_capacity > 0
            else None
        )
        self.limiter = RateLimiter(
            default_policy=config.default_policy,
            per_client=per_client_policies,
            **limiter_kwargs,
        )
        self.stats = ServiceStats()

    @property
    def busy_s(self) -> float:
        """Total scoring/cache time this worker spent (simulated makespan input)."""
        return float(sum(self.stats.wall_times))

    def counters(self) -> dict[str, float]:
        """Monotonic counters; traffic replays diff these for per-run rows."""
        out = {
            "n_requests": float(self.stats.n_requests),
            "n_users_served": float(self.stats.n_users_served),
            "n_users_scored": float(self.stats.n_users_scored),
            "busy_s": self.busy_s,
        }
        if self.cache is not None:
            out["cache_hits"] = float(self.cache.stats.hits)
            out["cache_misses"] = float(self.cache.stats.misses)
        return out

    def summary(self) -> dict[str, float]:
        out = {"shard": float(self.index), **self.counters()}
        if self.cache is not None:
            out["cache_entries"] = float(len(self.cache))
        return out


class ShardedRecommendationService(RecommendationService):
    """Coordinator + N worker shards with single-service semantics.

    Parameters
    ----------
    model:
        The fitted recommender every shard scores against (one model
        replica in this simulation; shards own *serving* state).
    n_shards:
        Number of worker shards (1 is legal and useful as the scaling
        baseline).
    config:
        The :class:`ServingConfig` posture, applied per shard: each shard
        gets its own cache of ``cache_capacity`` entries and its own
        limiter with the same policies.  Because a client's admissions all
        land on its home shard and a user's cache keys all land on its
        owning shard, behaviour matches one global cache/limiter
        (eviction order under capacity pressure is the one documented
        divergence — per-shard LRU is local).
    routing:
        ``"hash"`` (stable modulo hash) or ``"consistent"`` (ring with
        virtual nodes).
    """

    def __init__(
        self,
        model: Recommender,
        n_shards: int = 2,
        config: ServingConfig | None = None,
        detector: object | None = None,
        clock: Callable[[], float] = time.perf_counter,
        limiter_clock: Callable[[], float] | None = None,
        routing: str | ShardRouter = "hash",
    ) -> None:
        super().__init__(
            model, config=config, detector=detector, clock=clock, limiter_clock=limiter_clock
        )
        # Note: the coordinator's own cache is disabled via _make_cache
        # (shards hold the caches); self.limiter stays as the policy
        # registry (policy_for), but admission always routes to the
        # client's home-shard limiter.
        if isinstance(routing, ShardRouter):
            if routing.n_shards != n_shards:
                raise ConfigurationError(
                    f"router is sized for {routing.n_shards} shards, service has {n_shards}"
                )
            self.router = routing
        elif routing == "hash":
            self.router = ShardRouter(n_shards)
        elif routing == "consistent":
            self.router = ConsistentHashRouter(n_shards)
        else:
            raise ConfigurationError(f"routing must be one of {_ROUTINGS} or a ShardRouter")
        self.n_shards = n_shards
        limiter_kwargs = {} if limiter_clock is None else {"clock": limiter_clock}
        per_client = dict(self.config.client_policies)
        per_client.setdefault("evaluator", UNLIMITED)
        self.bus = InvalidationBus()
        self.shards = [
            _WorkerShard(i, self.config, per_client, limiter_kwargs) for i in range(n_shards)
        ]
        for shard in self.shards:
            if shard.cache is not None:
                self.bus.subscribe(lambda _uid, cache=shard.cache: cache.note_injection())

    def _make_cache(self):
        return None  # per-shard caches only; see _WorkerShard

    # -- routing helpers ------------------------------------------------------
    def _limiter_for_client(self, client: str) -> RateLimiter:
        return self.shards[self.router.shard_for_client(client)].limiter

    def shard_of(self, user_id: int) -> int:
        """Which worker owns this user's cache keys (test/report helper)."""
        return self.router.shard_for_user(user_id)

    # -- query path -----------------------------------------------------------
    def query(
        self,
        user_ids: Sequence[int],
        k: int,
        exclude_seen: bool = True,
        client: str = "default",
        use_cache: bool = True,
    ) -> list[np.ndarray]:
        """Fan one batched request out to the owning shards and merge.

        Admission happens once, on the client's home shard, exactly as a
        global limiter would count it.  Each shard then resolves its slice
        of the request against its own cache and folds the misses into
        one ``top_k_batch`` call; merged results come back in request
        order.  Identical inputs produce element-wise identical lists to
        the single service (``top_k_batch`` is per-user independent).
        """
        if k <= 0:
            raise ConfigurationError("k must be positive")
        start = self._clock()
        users = [int(u) for u in user_ids]
        self._limiter_for_client(client).admit_query(client, len(users))
        results: list[np.ndarray | None] = [None] * len(users)
        by_shard: dict[int, list[int]] = {}
        for position, user in enumerate(users):
            by_shard.setdefault(self.router.shard_for_user(user), []).append(position)
        n_scored_total = 0
        for shard_index, positions in by_shard.items():
            shard = self.shards[shard_index]
            shard_users = [users[p] for p in positions]
            t0 = self._clock()
            if shard.cache is None or not use_cache:
                n_scored = len(shard_users)
                shard_results = self._model.top_k_batch(shard_users, k, exclude_seen=exclude_seen)
            else:
                shard_results = [shard.cache.lookup(u, k, exclude_seen) for u in shard_users]
                missing = sorted({u for u, r in zip(shard_users, shard_results) if r is None})
                n_scored = len(missing)
                if missing:
                    fresh = dict(
                        zip(
                            missing,
                            self._model.top_k_batch(missing, k, exclude_seen=exclude_seen),
                        )
                    )
                    for u, items in fresh.items():
                        shard.cache.store(u, k, exclude_seen, items)
                    shard_results = [
                        fresh[u] if r is None else r for u, r in zip(shard_users, shard_results)
                    ]
            shard.stats.record_request(len(shard_users), n_scored, self._clock() - t0)
            n_scored_total += n_scored
            for position, items in zip(positions, shard_results):
                results[position] = items
        self.stats.record_request(len(users), n_scored_total, self._clock() - start)
        return list(results)

    # -- injection pipeline hooks --------------------------------------------
    def _admit_injection(self, client: str) -> None:
        self._limiter_for_client(client).admit_injection(client)

    def _invalidate_after_injection(self, user_id: int) -> None:
        self.bus.publish(user_id)

    # -- episode management ---------------------------------------------------
    def restore(self, snapshot) -> None:
        """Roll back the model, then flush every shard's serving state."""
        super().restore(snapshot)
        for shard in self.shards:
            if shard.cache is not None:
                shard.cache.flush()
            shard.limiter.reset()

    # -- reporting -------------------------------------------------------------
    def cache_stats(self) -> CacheStats | None:
        """Summed per-shard cache counters (None when caching is off)."""
        if self.config.cache_capacity <= 0:
            return None
        total = CacheStats()
        for shard in self.shards:
            total.hits += shard.cache.stats.hits
            total.misses += shard.cache.stats.misses
            total.evictions += shard.cache.stats.evictions
            total.invalidations += shard.cache.stats.invalidations
        return total

    def shard_summaries(self) -> list[dict[str, float]]:
        return [shard.summary() for shard in self.shards]

    def makespan_s(self) -> float:
        """Simulated parallel wall time: the busiest worker's total busy time."""
        return max((shard.busy_s for shard in self.shards), default=0.0)

    def total_busy_s(self) -> float:
        return float(sum(shard.busy_s for shard in self.shards))

    def simulated_speedup(self) -> float:
        """Parallel speedup of the replay: total busy time / makespan."""
        makespan = self.makespan_s()
        return self.total_busy_s() / makespan if makespan > 0 else 1.0

    def load_balance(self) -> dict[str, float]:
        """How evenly routing spread the served users across workers."""
        served = np.array([shard.stats.n_users_served for shard in self.shards], dtype=np.float64)
        mean = float(served.mean()) if served.size else 0.0
        return {
            "n_shards": float(self.n_shards),
            "mean_users_per_shard": mean,
            "max_users_per_shard": float(served.max()) if served.size else 0.0,
            "imbalance": float(served.max() / mean) if mean > 0 else 1.0,
        }
