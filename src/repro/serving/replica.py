"""Worker-side shard replica protocol for the process execution engine.

A process-engine worker shares no memory with the coordinator, so the
shard it serves is a **replica**: the model, the shard's
:class:`~repro.serving.cache.TopKCache`, its
:class:`~repro.serving.rate_limit.RateLimiter` policies, and its
:class:`~repro.serving.service.ServiceStats` are serialized into the
worker process at pool start (:func:`install_replica`) and kept in
lockstep afterwards through explicit replication messages:

* every injection is an epoch-stamped :class:`ReplicationEvent` — the
  worker applies the same ``add_user`` the coordinator applied, installs
  the coordinator's pre-warmed scoring caches instead of rebuilding them
  (:meth:`~repro.recsys.base.Recommender.apply_prewarm`), advances its
  staleness clock, and acknowledges the new epoch;
* every episode restore is a ``resync`` event carrying the rolled-back
  model, which replaces the replica wholesale and resets serving state;
* every query slice carries the coordinator's current epoch, and a
  worker whose replica lags (or leads) raises
  :class:`~repro.errors.StaleReplicaError` instead of silently serving a
  stale model version — the detectability guarantee the replication
  property tests pin.

The functions in this module are the only code that runs inside worker
processes.  They are module-level (picklable by reference), take only
picklable arguments, and return small result records
(:class:`SliceResult` / :class:`ReplicaAck`) that the coordinator folds
into its per-shard mirrors so reports and conformance counters are
engine-independent.

:func:`resolve_slice` — the cache-lookup/batch-score/store step — is
shared with the in-memory engines' resolution path, so a slice resolves
through byte-identical logic whether the shard lives in the coordinator
process or in a worker replica.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ConfigurationError, StaleReplicaError
from repro.serving.cache import TopKCache
from repro.serving.rate_limit import RateLimiter
from repro.serving.service import ServiceStats, ServingConfig, resolve_slice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recsys.base import Recommender

__all__ = [
    "ReplicationEvent",
    "SliceResult",
    "ReplicaAck",
    "resolve_slice",
    "install_replica",
    "query_slice",
    "apply_event",
    "probe_replica",
]


@dataclass(frozen=True)
class ReplicationEvent:
    """One epoch-stamped state change broadcast to every shard.

    ``kind`` is ``"inject"`` (a profile landed: ``user_id``/``profile``
    are set, ``prewarm`` carries the coordinator's freshly rebuilt lazy
    scoring caches) or ``"resync"`` (an episode restore: ``model_blob``
    is the pickled rolled-back model that replaces each replica
    wholesale).  ``epoch`` is the model version the event produces; a
    replica must be at exactly ``epoch - 1`` to apply an ``inject`` and
    acknowledges ``epoch`` once applied.
    """

    kind: str
    epoch: int
    user_id: int | None = None
    profile: tuple[int, ...] | None = None
    prewarm: object = None
    model_blob: bytes | None = None


@dataclass(frozen=True)
class CacheSnapshot:
    """Counter view of a replica's cache, mirrored back to the coordinator.

    ``seq`` is the replica's state-change sequence number (every applied
    slice or event increments it): snapshots from one replica can arrive
    at the coordinator out of order when concurrent client threads
    complete their fan-outs in a different order than the worker served
    them, and the mirror must only ever move forward.
    """

    seq: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    version: int = 0
    n_entries: int = 0


@dataclass(frozen=True)
class SliceResult:
    """Outcome of one query slice resolved inside a worker replica."""

    n_scored: int
    results: list[np.ndarray]
    elapsed: float
    epoch: int
    model_n_users: int
    cache: CacheSnapshot | None


@dataclass(frozen=True)
class ReplicaAck:
    """Acknowledgement that a replica applied a replication event."""

    shard_index: int
    epoch: int
    model_n_users: int
    cache: CacheSnapshot | None


# resolve_slice — the single definition of slice semantics — lives in
# repro.serving.service (the single service's query path routes through
# it too, and service cannot import from here without a cycle).  It is
# re-exported so worker-process call sites keep importing it from the
# replica protocol module.


class _ReplicaState:
    """Everything one worker process holds for its shard."""

    def __init__(
        self,
        shard_index: int,
        model: "Recommender",
        config: ServingConfig,
        epoch: int,
        shard_latency_s: float,
    ) -> None:
        self.shard_index = shard_index
        self.model = model
        self.config = config
        self.epoch = epoch
        self.shard_latency_s = shard_latency_s
        self.seq = 0  # state-change counter; see CacheSnapshot.seq
        self.cache = (
            TopKCache(capacity=config.cache_capacity, ttl_injections=config.ttl_injections)
            if config.cache_capacity > 0
            else None
        )
        # Replicated alongside the cache so the worker owns the complete
        # shard serving state; admission itself stays at the coordinator
        # front door (a client's admissions must serialize *before*
        # fan-out), so these windows see no traffic in this deployment.
        self.limiter = RateLimiter(
            default_policy=config.default_policy,
            per_client=dict(config.client_policies),
        )
        self.stats = ServiceStats()

    def cache_snapshot(self) -> CacheSnapshot | None:
        if self.cache is None:
            return None
        stats = self.cache.stats
        return CacheSnapshot(
            seq=self.seq,
            hits=stats.hits,
            misses=stats.misses,
            evictions=stats.evictions,
            invalidations=stats.invalidations,
            version=self.cache.version,
            n_entries=len(self.cache),
        )

    def ack(self) -> ReplicaAck:
        return ReplicaAck(
            shard_index=self.shard_index,
            epoch=self.epoch,
            model_n_users=self.model.dataset.n_users,
            cache=self.cache_snapshot(),
        )


#: The one replica this worker process serves (single-worker pools mean
#: exactly one shard's state per process).
_REPLICA: _ReplicaState | None = None


def _require_replica() -> _ReplicaState:
    if _REPLICA is None:
        raise ConfigurationError("replica worker used before install_replica")
    return _REPLICA


def install_replica(
    shard_index: int,
    model_blob: bytes,
    config: ServingConfig,
    epoch: int,
    shard_latency_s: float,
) -> ReplicaAck:
    """Deserialize the shard's state into this worker (pool start).

    ``model_blob`` is pickled once by the coordinator and shipped to
    every worker, so N replicas cost one serialization.
    """
    global _REPLICA
    _REPLICA = _ReplicaState(
        shard_index=shard_index,
        model=pickle.loads(model_blob),
        config=config,
        epoch=epoch,
        shard_latency_s=shard_latency_s,
    )
    return _REPLICA.ack()


def query_slice(
    expected_epoch: int,
    users: Sequence[int] | np.ndarray,
    k: int,
    exclude_seen: bool,
    use_cache: bool,
) -> SliceResult:
    """Resolve one slice against the replica at ``expected_epoch``.

    The modelled shard-worker RPC latency is slept before the timed
    region and the busy clock covers only resolution, matching the
    in-memory engines' accounting (busy time stays pure compute).
    """
    state = _require_replica()
    if state.epoch != expected_epoch:
        raise StaleReplicaError(
            f"shard {state.shard_index} replica is at epoch {state.epoch}, "
            f"coordinator expected {expected_epoch}"
        )
    if state.shard_latency_s > 0.0:
        time.sleep(state.shard_latency_s)
    t0 = time.perf_counter()
    n_scored, results = resolve_slice(state.model, state.cache, users, k, exclude_seen, use_cache)
    elapsed = time.perf_counter() - t0
    state.stats.record_request(len(users), n_scored, elapsed)
    state.seq += 1
    return SliceResult(
        n_scored=n_scored,
        results=results,
        elapsed=elapsed,
        epoch=state.epoch,
        model_n_users=state.model.dataset.n_users,
        cache=state.cache_snapshot(),
    )


def apply_event(event: ReplicationEvent) -> ReplicaAck:
    """Apply one replication event to this worker's replica."""
    state = _require_replica()
    if event.kind == "inject":
        if event.epoch != state.epoch + 1:
            raise StaleReplicaError(
                f"shard {state.shard_index} replica at epoch {state.epoch} received "
                f"out-of-order injection epoch {event.epoch}"
            )
        user_id = state.model.add_user(list(event.profile))
        if user_id != event.user_id:
            raise StaleReplicaError(
                f"shard {state.shard_index} replica assigned user id {user_id} "
                f"to an injection the coordinator recorded as {event.user_id}"
            )
        state.model.apply_prewarm(event.prewarm)
        if state.cache is not None:
            state.cache.note_injection()
        state.epoch = event.epoch
    elif event.kind == "resync":
        state.model = pickle.loads(event.model_blob)
        if state.cache is not None:
            # Entries and counters clear; the monotonic staleness clock
            # keeps ticking, matching the coordinator-side shard reset
            # (TTL freshness is relative, so only entries must go).
            state.cache.flush()
            state.cache.stats.reset()
        state.limiter.reset()
        state.stats.reset()
        state.epoch = event.epoch
    else:
        raise ConfigurationError(f"unknown replication event kind {event.kind!r}")
    state.seq += 1
    return state.ack()


def probe_replica() -> dict:
    """Diagnostic view of the replica (epoch checks, pre-warm accounting)."""
    state = _require_replica()
    return {
        "shard": state.shard_index,
        "epoch": state.epoch,
        "n_users": state.model.dataset.n_users,
        "n_requests": state.stats.n_requests,
        "cache_entries": len(state.cache) if state.cache is not None else 0,
        "prewarm": state.model.prewarm_stats(),
    }
