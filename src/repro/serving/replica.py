"""Worker-side shard replica protocol for the process execution engine.

A process-engine worker shares no memory with the coordinator, so the
shard it serves is a **replica**: the model, the shard's
:class:`~repro.serving.cache.TopKCache`, its
:class:`~repro.serving.rate_limit.RateLimiter` policies, and its
:class:`~repro.serving.service.ServiceStats` are serialized into the
worker process at pool start (:func:`install_replica`) and kept in
lockstep afterwards through explicit replication messages:

* every injection is an epoch-stamped :class:`ReplicationEvent` — the
  worker applies the same ``add_user`` the coordinator applied, installs
  the coordinator's pre-warmed scoring caches instead of rebuilding them
  (:meth:`~repro.recsys.base.Recommender.apply_prewarm`), advances its
  staleness clock, and acknowledges the new epoch;
* every episode restore is a ``resync`` event carrying the rolled-back
  model, which replaces the replica wholesale and resets serving state;
* every query slice carries the coordinator's current epoch, and a
  worker whose replica lags (or leads) raises
  :class:`~repro.errors.StaleReplicaError` instead of silently serving a
  stale model version — the detectability guarantee the replication
  property tests pin.

The functions in this module are the only code that runs inside worker
processes.  They are module-level (picklable by reference), take only
picklable arguments, and return small result records
(:class:`SliceResult` / :class:`ReplicaAck`) that the coordinator folds
into its per-shard mirrors so reports and conformance counters are
engine-independent.

:func:`resolve_slice` — the cache-lookup/batch-score/store step — is
shared with the in-memory engines' resolution path, so a slice resolves
through byte-identical logic whether the shard lives in the coordinator
process or in a worker replica.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ConfigurationError, StaleReplicaError
from repro.serving import shared_state
from repro.serving.cache import TopKCache
from repro.serving.rate_limit import RateLimiter
from repro.serving.service import ServiceStats, ServingConfig, resolve_slice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recsys.base import Recommender

__all__ = [
    "ReplicationEvent",
    "InjectionRecord",
    "SliceResult",
    "ReplicaAck",
    "resolve_slice",
    "install_replica",
    "install_replica_sliced",
    "query_slice",
    "apply_event",
    "resync_sliced",
    "stage_rollout_replica",
    "unstage_rollout_replica",
    "probe_replica",
    "probe_memory",
]


@dataclass(frozen=True)
class InjectionRecord:
    """One injected user inside a batched replication event.

    ``user_id`` is the *global* id the coordinator assigned;
    ``owner_shard`` is the shard whose slice must append the user (every
    other shard only advances its global user count and staleness
    clock); ``user_state`` is the model's per-user payload
    (:meth:`~repro.recsys.base.Recommender.user_state` — e.g. MF's
    folded-in factor row) so the owner appends the coordinator's exact
    state instead of recomputing it without the item tables.
    """

    user_id: int
    profile: tuple[int, ...]
    owner_shard: int
    user_state: object = None


@dataclass(frozen=True)
class ReplicationEvent:
    """One epoch-stamped state change broadcast to every shard.

    ``kind`` is ``"inject"`` (a profile landed: ``user_id``/``profile``
    are set, ``prewarm`` carries the coordinator's freshly rebuilt lazy
    scoring caches), ``"inject_batch"`` (``records`` carries one
    :class:`InjectionRecord` per landed profile — a whole burst crosses
    the process boundary in one round trip), or ``"resync"`` (an episode
    restore: ``model_blob`` is the pickled rolled-back model that
    replaces each replica wholesale).  ``epoch`` is the model version
    the event produces; a replica must be at exactly ``epoch - 1`` to
    apply an ``inject`` (``epoch - len(records)`` for a batch) and
    acknowledges ``epoch`` once applied.
    """

    kind: str
    epoch: int
    user_id: int | None = None
    profile: tuple[int, ...] | None = None
    prewarm: object = None
    model_blob: bytes | None = None
    records: tuple[InjectionRecord, ...] | None = None


@dataclass(frozen=True)
class CacheSnapshot:
    """Counter view of a replica's cache, mirrored back to the coordinator.

    ``seq`` is the replica's state-change sequence number (every applied
    slice or event increments it): snapshots from one replica can arrive
    at the coordinator out of order when concurrent client threads
    complete their fan-outs in a different order than the worker served
    them, and the mirror must only ever move forward.
    """

    seq: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    version: int = 0
    n_entries: int = 0


@dataclass(frozen=True)
class SliceResult:
    """Outcome of one query slice resolved inside a worker replica.

    The trailing rollout fields are only nonzero while a version is
    staged on this replica: ``canary_users`` counts users this slice
    served *from the staged model* (the replica then recorded no stats
    and touched no cache — the coordinator mirrors nothing either);
    ``shadow_users``/``shadow_agree`` carry the shadow comparison for a
    slice that served the active model; ``rollout_error`` reports a
    staged-model failure (the slice fell back to the active model and
    the coordinator must roll the window back).
    """

    n_scored: int
    results: list[np.ndarray]
    elapsed: float
    epoch: int
    model_n_users: int
    cache: CacheSnapshot | None
    canary_users: int = 0
    shadow_users: int = 0
    shadow_agree: int = 0
    rollout_error: str | None = None


@dataclass(frozen=True)
class ReplicaAck:
    """Acknowledgement that a replica applied a replication event."""

    shard_index: int
    epoch: int
    model_n_users: int
    cache: CacheSnapshot | None


# resolve_slice — the single definition of slice semantics — lives in
# repro.serving.service (the single service's query path routes through
# it too, and service cannot import from here without a cycle).  It is
# re-exported so worker-process call sites keep importing it from the
# replica protocol module.


class _GlobalView:
    """Global-user-id facade over a sliced model.

    A sliced replica's dataset and per-user arrays are renumbered to
    local ids ``0..m-1``; query slices arrive addressed by global id.
    :func:`~repro.serving.service.resolve_slice` only ever calls
    ``top_k_batch`` on the model it is given, so this thin wrapper —
    translate global → local, delegate — is the complete serving
    surface.  Cache keys stay *global* (the wrapper sits between the
    cache and the model), so hit/miss/LRU behaviour is identical to full
    replication by construction.
    """

    def __init__(self, model: "Recommender", global_to_local: dict[int, int]) -> None:
        self._model = model
        self._global_to_local = global_to_local

    def top_k_batch(
        self, user_ids: Sequence[int] | np.ndarray, k: int, exclude_seen: bool = True
    ) -> list[np.ndarray]:
        mapping = self._global_to_local
        users = np.asarray(user_ids, dtype=np.int64)
        try:
            local = np.fromiter(
                (mapping[int(u)] for u in users), dtype=np.int64, count=users.size
            )
        except KeyError as exc:
            raise StaleReplicaError(
                f"user {exc.args[0]} is not in this shard's slice"
            ) from None
        return self._model.top_k_batch(local, k, exclude_seen=exclude_seen)


class _ReplicaState:
    """Everything one worker process holds for its shard."""

    def __init__(
        self,
        shard_index: int,
        model: "Recommender",
        config: ServingConfig,
        epoch: int,
        shard_latency_s: float,
    ) -> None:
        self.shard_index = shard_index
        self.model = model
        self.config = config
        self.epoch = epoch
        self.shard_latency_s = shard_latency_s
        self.seq = 0  # state-change counter; see CacheSnapshot.seq
        self.cache = (
            TopKCache(
                capacity=config.cache_capacity,
                ttl_injections=config.ttl_injections,
                n_items=model.dataset.n_items,
            )
            if config.cache_capacity > 0
            else None
        )
        # Replicated alongside the cache so the worker owns the complete
        # shard serving state; admission itself stays at the coordinator
        # front door (a client's admissions must serialize *before*
        # fan-out), so these windows see no traffic in this deployment.
        self.limiter = RateLimiter(
            default_policy=config.default_policy,
            per_client=dict(config.client_policies),
        )
        self.stats = ServiceStats()
        # Sliced-mode state (see install_replica_sliced): the model above
        # holds only this shard's user slice, addressed through a
        # global→local id map; the item side is attached shared memory.
        self.mode = "full"
        self.serving_model: object = model  # what resolve_slice scores with
        self.global_to_local: dict[int, int] | None = None
        self.n_users_global: int | None = None
        self.attached: shared_state.AttachedSharedState | None = None
        # Versioned-rollout window state: a staged candidate model (always
        # a *full* model — global ids score directly, even on a sliced
        # replica) and this shard's role in the window.  Transient by
        # design: promote replaces the replica wholesale via resync,
        # rollback unstages, and any resync clears both.
        self.staged_model: "Recommender | None" = None
        self.rollout_role: str | None = None  # "canary" | "shadow" | None

    def model_n_users(self) -> int:
        """Global user count (what acks/results/probes report).

        A sliced replica's own dataset holds only its shard's users; the
        coordinator's epoch verification compares against the *global*
        count, which the replica mirrors through install/inject/resync.
        """
        if self.mode == "sliced":
            return int(self.n_users_global)
        return self.model.dataset.n_users

    def enter_sliced(
        self,
        model: "Recommender",
        user_ids: np.ndarray,
        n_users_global: int,
    ) -> None:
        """Point serving state at a (new) user slice."""
        self.mode = "sliced"
        self.model = model
        self.global_to_local = {
            int(user_id): local for local, user_id in enumerate(np.asarray(user_ids))
        }
        self.serving_model = _GlobalView(model, self.global_to_local)
        self.n_users_global = int(n_users_global)

    def cache_snapshot(self) -> CacheSnapshot | None:
        if self.cache is None:
            return None
        stats = self.cache.stats
        return CacheSnapshot(
            seq=self.seq,
            hits=stats.hits,
            misses=stats.misses,
            evictions=stats.evictions,
            invalidations=stats.invalidations,
            version=self.cache.version,
            n_entries=len(self.cache),
        )

    def ack(self) -> ReplicaAck:
        return ReplicaAck(
            shard_index=self.shard_index,
            epoch=self.epoch,
            model_n_users=self.model_n_users(),
            cache=self.cache_snapshot(),
        )


#: The one replica this worker process serves (single-worker pools mean
#: exactly one shard's state per process).
_REPLICA: _ReplicaState | None = None


def _require_replica() -> _ReplicaState:
    if _REPLICA is None:
        raise ConfigurationError("replica worker used before install_replica")
    return _REPLICA


def install_replica(
    shard_index: int,
    model_blob: bytes,
    config: ServingConfig,
    epoch: int,
    shard_latency_s: float,
) -> ReplicaAck:
    """Deserialize the shard's state into this worker (pool start).

    ``model_blob`` is pickled once by the coordinator and shipped to
    every worker, so N replicas cost one serialization.
    """
    global _REPLICA
    _REPLICA = _ReplicaState(
        shard_index=shard_index,
        model=pickle.loads(model_blob),
        config=config,
        epoch=epoch,
        shard_latency_s=shard_latency_s,
    )
    return _REPLICA.ack()


def install_replica_sliced(
    shard_index: int,
    slice_blob: bytes,
    user_ids: np.ndarray,
    handle: shared_state.SharedStateHandle,
    config: ServingConfig,
    epoch: int,
    shard_latency_s: float,
    n_users_global: int,
) -> ReplicaAck:
    """Install a *sliced* replica: this shard's user slice + shared items.

    ``slice_blob`` pickles only the shard's per-user state (user rows,
    profiles) — catalog-sized arrays arrive by mapping the coordinator's
    shared-memory segments named in ``handle``, so install payload and
    per-worker RSS stay proportional to the shard's user count, not the
    catalog.
    """
    global _REPLICA
    model = pickle.loads(slice_blob)
    state = _ReplicaState(
        shard_index=shard_index,
        model=model,
        config=config,
        epoch=epoch,
        shard_latency_s=shard_latency_s,
    )
    state.attached = shared_state.attach(handle)
    model.attach_shared_item_state(state.attached.views)
    state.enter_sliced(model, np.asarray(user_ids, dtype=np.int64), n_users_global)
    _REPLICA = state
    return state.ack()


def query_slice(
    expected_epoch: int,
    users: Sequence[int] | np.ndarray,
    k: int,
    exclude_seen: bool,
    use_cache: bool,
) -> SliceResult:
    """Resolve one slice against the replica at ``expected_epoch``.

    The modelled shard-worker RPC latency is slept before the timed
    region and the busy clock covers only resolution, matching the
    in-memory engines' accounting (busy time stays pure compute).
    """
    state = _require_replica()
    if state.epoch != expected_epoch:
        raise StaleReplicaError(
            f"shard {state.shard_index} replica is at epoch {state.epoch}, "
            f"coordinator expected {expected_epoch}"
        )
    if state.shard_latency_s > 0.0:
        time.sleep(state.shard_latency_s)
    rollout_error: str | None = None
    if state.staged_model is not None and state.rollout_role == "canary":
        # Canary: serve the staged model, side-effect-free — no cache,
        # no stats, no seq bump — so a rollback leaves the shard's
        # durable state exactly as if the window never opened.  A staged
        # model that raises degrades the slice to the active model below
        # and reports the failure for the coordinator to act on.
        t0 = time.perf_counter()
        try:
            n_scored, results = resolve_slice(
                state.staged_model, None, users, k, exclude_seen, False
            )
        except StaleReplicaError:
            raise
        except Exception as exc:  # noqa: BLE001 - any staged-model fault rolls back
            rollout_error = f"{type(exc).__name__}: {exc}"
        else:
            elapsed = time.perf_counter() - t0
            return SliceResult(
                n_scored=n_scored,
                results=results,
                elapsed=elapsed,
                epoch=state.epoch,
                model_n_users=state.model_n_users(),
                cache=state.cache_snapshot(),
                canary_users=len(users),
            )
    t0 = time.perf_counter()
    n_scored, results = resolve_slice(
        state.serving_model, state.cache, users, k, exclude_seen, use_cache
    )
    elapsed = time.perf_counter() - t0
    shadow_users = 0
    shadow_agree = 0
    if (
        rollout_error is None
        and state.staged_model is not None
        and state.rollout_role == "shadow"
    ):
        # Shadow: the active model's lists were served above; score the
        # staged model on the side and count exact top-k agreement.
        try:
            _, staged_lists = resolve_slice(
                state.staged_model, None, users, k, exclude_seen, False
            )
        except StaleReplicaError:
            raise
        except Exception as exc:  # noqa: BLE001 - any staged-model fault rolls back
            rollout_error = f"{type(exc).__name__}: {exc}"
        else:
            shadow_users = len(users)
            shadow_agree = sum(
                int(np.array_equal(served, staged))
                for served, staged in zip(results, staged_lists)
            )
    state.stats.record_request(len(users), n_scored, elapsed)
    state.seq += 1
    return SliceResult(
        n_scored=n_scored,
        results=results,
        elapsed=elapsed,
        epoch=state.epoch,
        model_n_users=state.model_n_users(),
        cache=state.cache_snapshot(),
        shadow_users=shadow_users,
        shadow_agree=shadow_agree,
        rollout_error=rollout_error,
    )


def _apply_inject_batch(state: _ReplicaState, event: ReplicationEvent) -> None:
    """Apply a coalesced injection burst: one event, N users, one ack.

    A sliced replica appends only the users its shard owns (installing
    the coordinator's shipped per-user state) and advances the global
    user count and staleness clock for every record; a full replica
    replays every ``add_user`` then installs the post-burst pre-warm
    payload once.
    """
    records = event.records if event.records is not None else ()
    if event.epoch != state.epoch + len(records):
        raise StaleReplicaError(
            f"shard {state.shard_index} replica at epoch {state.epoch} received "
            f"out-of-order injection batch ending at epoch {event.epoch} "
            f"({len(records)} records)"
        )
    if state.mode == "sliced":
        for record in records:
            if record.user_id != state.n_users_global:
                raise StaleReplicaError(
                    f"shard {state.shard_index} replica expected user id "
                    f"{state.n_users_global} next, coordinator recorded {record.user_id}"
                )
            if record.owner_shard == state.shard_index:
                local_id = state.model.append_sliced_user(
                    list(record.profile), record.user_state
                )
                state.global_to_local[record.user_id] = local_id
            state.n_users_global += 1
            if state.cache is not None:
                state.cache.note_injection()
    else:
        for record in records:
            user_id = state.model.add_user(list(record.profile))
            if user_id != record.user_id:
                raise StaleReplicaError(
                    f"shard {state.shard_index} replica assigned user id {user_id} "
                    f"to an injection the coordinator recorded as {record.user_id}"
                )
            if state.cache is not None:
                state.cache.note_injection()
        state.model.apply_prewarm(event.prewarm)
    state.epoch = event.epoch


def apply_event(event: ReplicationEvent) -> ReplicaAck:
    """Apply one replication event to this worker's replica."""
    state = _require_replica()
    if event.kind == "inject":
        if event.epoch != state.epoch + 1:
            raise StaleReplicaError(
                f"shard {state.shard_index} replica at epoch {state.epoch} received "
                f"out-of-order injection epoch {event.epoch}"
            )
        user_id = state.model.add_user(list(event.profile))
        if user_id != event.user_id:
            raise StaleReplicaError(
                f"shard {state.shard_index} replica assigned user id {user_id} "
                f"to an injection the coordinator recorded as {event.user_id}"
            )
        state.model.apply_prewarm(event.prewarm)
        if state.cache is not None:
            state.cache.note_injection()
        state.epoch = event.epoch
    elif event.kind == "inject_batch":
        _apply_inject_batch(state, event)
    elif event.kind == "resync":
        state.model = pickle.loads(event.model_blob)
        state.mode = "full"
        state.serving_model = state.model
        state.staged_model = None
        state.rollout_role = None
        if state.cache is not None:
            # Entries clear and the version counter rewinds with them
            # (flush defines version as injections since construction/
            # flush), matching the coordinator-side shard reset.
            state.cache.flush()
            state.cache.stats.reset()
        state.limiter.reset()
        state.stats.reset()
        state.epoch = event.epoch
    else:
        raise ConfigurationError(f"unknown replication event kind {event.kind!r}")
    state.seq += 1
    return state.ack()


def resync_sliced(
    epoch: int,
    slice_blob: bytes,
    user_ids: np.ndarray,
    n_users_global: int,
) -> ReplicaAck:
    """Episode restore for a sliced replica: swap in the rolled-back slice.

    The worker keeps its shared-memory attachments — the coordinator
    republished the rolled-back item state into the *same* segments
    before this call — so the resync payload is one user slice,
    independent of catalog size.
    """
    state = _require_replica()
    if state.attached is None:
        raise ConfigurationError("resync_sliced requires a sliced replica")
    model = pickle.loads(slice_blob)
    model.attach_shared_item_state(state.attached.views)
    state.enter_sliced(model, np.asarray(user_ids, dtype=np.int64), n_users_global)
    state.staged_model = None
    state.rollout_role = None
    if state.cache is not None:
        state.cache.flush()
        state.cache.stats.reset()
    state.limiter.reset()
    state.stats.reset()
    state.epoch = epoch
    state.seq += 1
    return state.ack()


def stage_rollout_replica(model_blob: bytes, role: str, expected_epoch: int) -> ReplicaAck:
    """Stage a candidate model on this replica for a canary window.

    ``model_blob`` is always a *full* pickled model — even sliced
    replicas hold the complete candidate, because staged state is
    transient (it never enters shared memory, so rollback can never leak
    a segment) and global user ids then score directly.  Staging does
    not advance the epoch: the replica's durable state is untouched.
    """
    state = _require_replica()
    if state.epoch != expected_epoch:
        raise StaleReplicaError(
            f"shard {state.shard_index} replica is at epoch {state.epoch}, "
            f"coordinator staged a rollout at epoch {expected_epoch}"
        )
    if role not in ("canary", "shadow"):
        raise ConfigurationError(f"rollout role must be 'canary' or 'shadow', got {role!r}")
    state.staged_model = pickle.loads(model_blob)
    state.rollout_role = role
    state.seq += 1
    return state.ack()


def unstage_rollout_replica() -> ReplicaAck:
    """Drop the staged candidate (rollback); durable shard state stands."""
    state = _require_replica()
    state.staged_model = None
    state.rollout_role = None
    state.seq += 1
    return state.ack()


def probe_replica() -> dict:
    """Diagnostic view of the replica (epoch checks, pre-warm accounting).

    ``n_users`` is the *global* count in sliced mode — the value every
    coordinator-side consistency check compares against.
    """
    state = _require_replica()
    return {
        "shard": state.shard_index,
        "epoch": state.epoch,
        "n_users": state.model_n_users(),
        "n_requests": state.stats.n_requests,
        "cache_entries": len(state.cache) if state.cache is not None else 0,
        "prewarm": state.model.prewarm_stats(),
        "staged": state.staged_model is not None,
        "rollout_role": state.rollout_role,
    }


def probe_memory() -> dict:
    """This worker process's resident set size plus replica shape facts.

    Reads ``/proc/self/status`` (Linux; the memory bench's platform)
    rather than pulling in a profiler dependency.  Runs with or without
    an installed replica so the bench can also sample baseline worker
    RSS.
    """
    rss_kb = None
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    rss_kb = int(line.split()[1])
                    break
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    state = _REPLICA
    out: dict = {"rss_kb": rss_kb}
    if state is not None:
        out["shard"] = state.shard_index
        out["mode"] = state.mode
        out["n_local_users"] = state.model.dataset.n_users
        out["n_users"] = state.model_n_users()
    return out
