"""Hot-path profiling: per-stage wall-clock timers and cProfile capture.

The measured-vs-simulated throughput gap lives in coordinator overhead —
per-request Python work between "request arrives" and "model scores" —
so closing it needs attribution finer than one wall-clock number.  This
module provides the two views the ``repro-bench profile`` subcommand
reports side by side:

* :class:`StageTimers` — cheap accumulators for the hot-path stages
  (``queue``, ``admission``, ``routing``, ``cache``, ``scoring``,
  ``merge``).  A service exposes a ``profiler`` attribute (``None`` by
  default: the query path pays a single attribute check per stage when
  profiling is off); attach a :class:`StageTimers` and every request
  adds per-stage seconds.  Works with the in-memory engines only —
  stage timers cannot cross the process boundary, and under the
  threaded engine concurrent workers *sum* their stage seconds, so
  totals are cumulative busy time, not elapsed wall clock.
* :func:`profile_callable` — cProfile around a callable, returning the
  top functions by total time as plain dicts (JSON-friendly, so the
  CLI can dump them next to the stage table).
"""

from __future__ import annotations

import cProfile
import pstats
import threading
from typing import Callable

__all__ = ["STAGES", "StageTimers", "profile_callable", "top_functions"]

#: Hot-path stages in request order.  ``queue`` is admission-queue wait
#: at the async front (arrival → service start; zero everywhere else),
#: ``admission`` rate-limit admission, ``routing`` the shard grouping
#: (sharded deployments only), ``cache`` batched lookup + store,
#: ``scoring`` the model's ``top_k_batch``, ``merge`` the scatter back
#: into request order.
STAGES = ("queue", "admission", "routing", "cache", "scoring", "merge")


class StageTimers:
    """Thread-safe per-stage time/call/user accumulators.

    ``add`` is called from whichever thread resolved the stage (the
    threaded engine's shard workers included), so the counters are
    guarded by a lock; the lock is taken once per stage sample, not per
    user, keeping instrumentation overhead per request bounded.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.seconds: dict[str, float] = {stage: 0.0 for stage in STAGES}  # guarded-by: _lock
        self.calls: dict[str, int] = {stage: 0 for stage in STAGES}  # guarded-by: _lock
        self.users: dict[str, int] = {stage: 0 for stage in STAGES}  # guarded-by: _lock

    def add(self, stage: str, seconds: float, n_users: int = 0) -> None:
        """Record one timed stage sample covering ``n_users`` users."""
        with self._lock:
            self.seconds[stage] += seconds
            self.calls[stage] += 1
            self.users[stage] += n_users

    def reset(self) -> None:
        with self._lock:
            for stage in STAGES:
                self.seconds[stage] = 0.0
                self.calls[stage] = 0
                self.users[stage] = 0

    def summary(self, n_users_served: int | None = None) -> dict:
        """JSON-friendly stage table.

        ``share`` is each stage's fraction of the total *instrumented*
        time (the un-instrumented remainder — request bookkeeping, the
        engine fan-out machinery — is whatever the caller's wall clock
        shows above this total).  With ``n_users_served``, per-stage
        ``ns_per_user`` normalises by the replay's served users.
        """
        with self._lock:
            seconds = dict(self.seconds)
            calls = dict(self.calls)
            users = dict(self.users)
        total = sum(seconds.values())
        stages: dict[str, dict[str, float]] = {}
        for stage in STAGES:
            entry: dict[str, float] = {
                "total_s": seconds[stage],
                "calls": float(calls[stage]),
                "n_users": float(users[stage]),
                "share": seconds[stage] / total if total > 0 else 0.0,
            }
            if n_users_served:
                entry["ns_per_user"] = seconds[stage] / n_users_served * 1e9
            stages[stage] = entry
        return {"total_stage_s": total, "stages": stages}


def top_functions(stats: pstats.Stats, top: int = 12) -> list[dict]:
    """The ``top`` rows of a profile by total (self) time, as dicts."""
    rows = []
    for (filename, line, name), entry in stats.stats.items():  # type: ignore[attr-defined]
        cc, ncalls, tottime, cumtime, _callers = entry
        rows.append(
            {
                "function": f"{filename}:{line}({name})",
                "ncalls": int(ncalls),
                "tottime_s": float(tottime),
                "cumtime_s": float(cumtime),
            }
        )
    rows.sort(key=lambda row: row["tottime_s"], reverse=True)
    return rows[:top]


def profile_callable(fn: Callable[[], object], top: int = 12) -> tuple[object, list[dict]]:
    """Run ``fn`` under cProfile; return ``(result, top-function rows)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    return result, top_functions(pstats.Stats(profiler), top=top)
